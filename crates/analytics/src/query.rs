//! `analytics::query` — the aggregation-pipeline DSL over
//! [`FlowFrame`].
//!
//! A [`Pipeline`] is a JSON-specified sequence of stages,
//! `match → group → project → sort → limit`, compiled against the
//! frame and executed deterministically in parallel:
//!
//! * **Match** filters rows. Conjuncts over the pre-resolved
//!   small-int columns are pushed down into lookup tables
//!   ([`crate::expr::compile_match`]) so the scan touches one or two
//!   bytes per row before any wide column loads.
//! * **Group** buckets the selection by key expressions and folds
//!   aggregates (`sum`/`count`/`min`/`max`/`mean`/`quantile`). The
//!   fold runs as per-chunk partial hash maps over
//!   [`ordered_par_chunks`], merged *in chunk order*, so the result
//!   is byte-identical at any worker count (see DESIGN.md §11 for
//!   the argument). Output rows are sorted by group key.
//! * **Project** computes derived columns; **Sort**/**Limit** shape
//!   the final [`ResultTable`], renderable as aligned text, CSV, or
//!   JSON.
//!
//! The hand-rolled figure folds in [`crate::engine`] remain the fused
//! fast path; [`paper`] re-expresses Table 1 and Figures 2–4 as
//! pipelines and the test suite pins them byte-for-byte against the
//! engine output, proving the DSL subsumes them.

use crate::agg::Enrichment;
use crate::expr::{bind, compile_match, truthy, BoundExpr, ColSlot, Expr, Json, QueryError, RowCtx, Value};
use crate::frame::FlowFrame;
use crate::report::{Fig2, Fig3, Fig4, Table1};
use satwatch_monitor::L7Protocol;
use satwatch_simcore::stats::quantile;
use satwatch_simcore::{ordered_par_chunks, ordered_par_ranges, FxHashMap};
use satwatch_traffic::Country;
use std::collections::hash_map::Entry;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

struct Metrics {
    rows_scanned: &'static satwatch_telemetry::Counter,
    rows_after_pushdown: &'static satwatch_telemetry::Counter,
    result_rows: &'static satwatch_telemetry::Counter,
    match_us: &'static satwatch_telemetry::Histogram,
    group_us: &'static satwatch_telemetry::Histogram,
    project_us: &'static satwatch_telemetry::Histogram,
    sort_us: &'static satwatch_telemetry::Histogram,
    run_us: &'static satwatch_telemetry::Histogram,
}

fn metrics() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        rows_scanned: satwatch_telemetry::counter("query_rows_scanned_total"),
        rows_after_pushdown: satwatch_telemetry::counter("query_rows_after_pushdown_total"),
        result_rows: satwatch_telemetry::counter("query_result_rows_total"),
        match_us: satwatch_telemetry::histogram("query_match_us"),
        group_us: satwatch_telemetry::histogram("query_group_us"),
        project_us: satwatch_telemetry::histogram("query_project_us"),
        sort_us: satwatch_telemetry::histogram("query_sort_us"),
        run_us: satwatch_telemetry::histogram("query_run_us"),
    })
}

// ---------------------------------------------------------------------------
// Pipeline model
// ---------------------------------------------------------------------------

/// Aggregate functions available in a `group` stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Sum,
    Count,
    Min,
    Max,
    Mean,
    Quantile,
}

/// One aggregate: `sum`/`mean`/… of an argument expression. `Count`
/// with no argument counts rows; with one, counts non-null values.
/// `Quantile` carries `q` (type-7, matching
/// [`satwatch_simcore::stats::quantile`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Agg {
    pub func: AggFunc,
    pub arg: Option<Expr>,
    pub q: f64,
}

/// One pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// Keep rows where the predicate is true.
    Match(Expr),
    /// Bucket by key expressions, fold aggregates per bucket.
    Group { by: Vec<(String, Expr)>, aggs: Vec<(String, Agg)> },
    /// Compute derived columns.
    Project(Vec<(String, Expr)>),
    /// Stable sort by named output columns (`"-name"` = descending).
    Sort(Vec<(String, bool)>),
    /// Keep the first `n` rows.
    Limit(usize),
}

/// A parsed pipeline: an ordered list of stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    pub stages: Vec<Stage>,
}

impl Pipeline {
    /// Parse a pipeline from JSON text: either a bare stage array or
    /// `{"pipeline": [...]}`. See DESIGN.md §11 for the grammar.
    pub fn parse(src: &str) -> Result<Pipeline, QueryError> {
        let json = Json::parse(src)?;
        let stages_json = match &json {
            Json::Arr(items) => items,
            Json::Obj(_) => match json.get("pipeline") {
                Some(Json::Arr(items)) => items,
                _ => return Err(QueryError::new("expected a stage array or {\"pipeline\": [...]}")),
            },
            _ => return Err(QueryError::new("expected a stage array or {\"pipeline\": [...]}")),
        };
        let stages = stages_json.iter().map(parse_stage).collect::<Result<Vec<_>, _>>()?;
        if stages.is_empty() {
            return Err(QueryError::new("pipeline has no stages"));
        }
        Ok(Pipeline { stages })
    }
}

fn parse_stage(j: &Json) -> Result<Stage, QueryError> {
    let Json::Obj(fields) = j else {
        return Err(QueryError::new("each stage must be an object with one key"));
    };
    if fields.len() != 1 {
        return Err(QueryError::new("each stage must have exactly one key"));
    }
    let (name, arg) = &fields[0];
    match name.as_str() {
        "match" => Ok(Stage::Match(Expr::from_json(arg)?)),
        "group" => parse_group(arg),
        "project" => Ok(Stage::Project(parse_named_exprs(arg, "project")?)),
        "sort" => parse_sort(arg),
        "limit" => match arg {
            Json::Int(n) if *n >= 0 => Ok(Stage::Limit(*n as usize)),
            _ => Err(QueryError::new("\"limit\" takes a non-negative integer")),
        },
        other => Err(QueryError::new(format!("unknown stage \"{other}\" (expected match/group/project/sort/limit)"))),
    }
}

/// Parse `{"name": expr, ...}`; a bare string value is shorthand for a
/// column ref, so `{"svc": "service"}` means `{"svc": {"col": "service"}}`.
fn parse_named_exprs(j: &Json, stage: &str) -> Result<Vec<(String, Expr)>, QueryError> {
    match j {
        Json::Obj(fields) => fields
            .iter()
            .map(|(name, v)| {
                let e = match v {
                    Json::Str(col) => Expr::Col(col.clone()),
                    other => Expr::from_json(other)?,
                };
                Ok((name.clone(), e))
            })
            .collect(),
        // `["service", "country"]` — name each output after the column.
        Json::Arr(items) => items
            .iter()
            .map(|v| match v {
                Json::Str(col) => Ok((col.clone(), Expr::Col(col.clone()))),
                _ => Err(QueryError::new(format!("\"{stage}\" array entries must be column name strings"))),
            })
            .collect(),
        _ => Err(QueryError::new(format!("\"{stage}\" takes an object or a column name array"))),
    }
}

fn parse_group(j: &Json) -> Result<Stage, QueryError> {
    let Json::Obj(_) = j else {
        return Err(QueryError::new("\"group\" takes {\"by\": ..., \"aggs\": ...}"));
    };
    let by = match j.get("by") {
        Some(b) => parse_named_exprs(b, "by")?,
        None => Vec::new(),
    };
    let aggs_json = j.get("aggs").ok_or_else(|| QueryError::new("\"group\" needs an \"aggs\" object"))?;
    let Json::Obj(agg_fields) = aggs_json else {
        return Err(QueryError::new("\"aggs\" must be an object of name → aggregate"));
    };
    let mut aggs = Vec::new();
    for (out, spec) in agg_fields {
        let Json::Obj(f) = spec else {
            return Err(QueryError::new(format!("aggregate \"{out}\" must be an object like {{\"sum\": ...}}")));
        };
        if f.len() != 1 {
            return Err(QueryError::new(format!("aggregate \"{out}\" must have exactly one key")));
        }
        let (func_name, arg) = &f[0];
        let agg = match func_name.as_str() {
            "count" => match arg {
                Json::Bool(true) | Json::Null => Agg { func: AggFunc::Count, arg: None, q: 0.0 },
                other => Agg { func: AggFunc::Count, arg: Some(expr_or_col(other)?), q: 0.0 },
            },
            "sum" | "min" | "max" | "mean" => {
                let func = match func_name.as_str() {
                    "sum" => AggFunc::Sum,
                    "min" => AggFunc::Min,
                    "max" => AggFunc::Max,
                    _ => AggFunc::Mean,
                };
                Agg { func, arg: Some(expr_or_col(arg)?), q: 0.0 }
            }
            "quantile" => {
                let Json::Arr(items) = arg else {
                    return Err(QueryError::new("\"quantile\" takes [expr, q]"));
                };
                if items.len() != 2 {
                    return Err(QueryError::new("\"quantile\" takes [expr, q]"));
                }
                let q = match &items[1] {
                    Json::Num(x) => *x,
                    Json::Int(i) => *i as f64,
                    _ => return Err(QueryError::new("quantile q must be a number")),
                };
                if !(0.0..=1.0).contains(&q) {
                    return Err(QueryError::new("quantile q must be in [0, 1]"));
                }
                Agg { func: AggFunc::Quantile, arg: Some(expr_or_col(&items[0])?), q }
            }
            other => {
                return Err(QueryError::new(format!(
                    "unknown aggregate \"{other}\" (expected sum/count/min/max/mean/quantile)"
                )))
            }
        };
        aggs.push((out.clone(), agg));
    }
    if aggs.is_empty() {
        return Err(QueryError::new("\"aggs\" must define at least one aggregate"));
    }
    Ok(Stage::Group { by, aggs })
}

/// A bare string in aggregate-argument position is a column ref.
fn expr_or_col(j: &Json) -> Result<Expr, QueryError> {
    match j {
        Json::Str(col) => Ok(Expr::Col(col.clone())),
        other => Expr::from_json(other),
    }
}

fn parse_sort(j: &Json) -> Result<Stage, QueryError> {
    let parse_key = |s: &str| -> (String, bool) {
        match s.strip_prefix('-') {
            Some(rest) => (rest.to_string(), true),
            None => (s.to_string(), false),
        }
    };
    match j {
        Json::Str(s) => Ok(Stage::Sort(vec![parse_key(s)])),
        Json::Arr(items) => {
            let mut keys = Vec::new();
            for it in items {
                let Json::Str(s) = it else {
                    return Err(QueryError::new("\"sort\" entries must be column names (\"-name\" for descending)"));
                };
                keys.push(parse_key(s));
            }
            if keys.is_empty() {
                return Err(QueryError::new("\"sort\" needs at least one key"));
            }
            Ok(Stage::Sort(keys))
        }
        _ => Err(QueryError::new("\"sort\" takes a column name or an array of them")),
    }
}

// ---------------------------------------------------------------------------
// Result table
// ---------------------------------------------------------------------------

/// A materialized query result: named columns, rows of [`Value`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultTable {
    /// Aligned fixed-width text: numeric columns right-aligned,
    /// everything else left-aligned, nulls as `-`.
    pub fn render_text(&self) -> String {
        let cells: Vec<Vec<String>> = self.rows.iter().map(|r| r.iter().map(Value::render_text).collect()).collect();
        let right: Vec<bool> = (0..self.columns.len()).map(|c| self.rows.iter().any(|r| r[c].is_numeric())).collect();
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(c, name)| cells.iter().map(|r| r[c].len()).chain([name.len()]).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        let mut push_row = |fields: &[String]| {
            for (c, field) in fields.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let w = widths[c];
                if right[c] {
                    out.push_str(&format!("{field:>w$}"));
                } else if c + 1 == fields.len() {
                    out.push_str(field); // no trailing padding
                } else {
                    out.push_str(&format!("{field:<w$}"));
                }
            }
            out.push('\n');
        };
        push_row(&self.columns.to_vec());
        for row in &cells {
            push_row(row);
        }
        out
    }

    /// RFC-4180-ish CSV: header row, fields quoted when they contain
    /// a comma, quote, or newline; nulls empty.
    pub fn render_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&self.columns.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            let line = row
                .iter()
                .map(|v| match v {
                    Value::Null => String::new(),
                    Value::Str(s) => field(s),
                    other => other.render_text(),
                })
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Compact JSON: `{"columns": [...], "rows": [[...], ...]}`.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn val(v: &Value) -> String {
            match v {
                Value::Null => "null".to_string(),
                Value::Bool(b) => b.to_string(),
                Value::Int(i) => i.to_string(),
                Value::Num(x) if x.is_finite() => format!("{x}"),
                Value::Num(_) => "null".to_string(), // NaN/inf have no JSON form
                Value::Str(s) => esc(s),
            }
        }
        let cols = self.columns.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",");
        let rows = self
            .rows
            .iter()
            .map(|r| format!("[{}]", r.iter().map(val).collect::<Vec<_>>().join(",")))
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"columns\":[{cols}],\"rows\":[{rows}]}}")
    }

    fn col_index(&self, name: &str) -> Result<usize, QueryError> {
        self.columns.iter().position(|c| c == name).ok_or_else(|| {
            QueryError::new(format!("unknown result column \"{name}\" (have: {})", self.columns.join(", ")))
        })
    }
}

/// Scan observability for one [`run_with_stats`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Rows entering `match` stages (frame rows for the first match).
    pub rows_scanned: u64,
    /// Rows surviving the pushed-down lookup tables, before the
    /// residual predicate runs.
    pub rows_after_pushdown: u64,
    /// Rows in the final table.
    pub result_rows: u64,
}

// ---------------------------------------------------------------------------
// Group-by machinery
// ---------------------------------------------------------------------------

/// A group key: hash/eq by value bits (NaN and -0.0 canonicalized).
#[derive(Debug, Clone)]
struct Key(Vec<Value>);

fn canon_bits(x: f64) -> u64 {
    if x.is_nan() {
        f64::NAN.to_bits()
    } else if x == 0.0 {
        0.0f64.to_bits()
    } else {
        x.to_bits()
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Key) -> bool {
        self.0.len() == other.0.len()
            && self.0.iter().zip(&other.0).all(|(a, b)| match (a, b) {
                (Value::Num(x), Value::Num(y)) => canon_bits(*x) == canon_bits(*y),
                _ => a == b,
            })
    }
}

impl Eq for Key {}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            match v {
                Value::Null => 0u8.hash(state),
                Value::Bool(b) => {
                    1u8.hash(state);
                    b.hash(state);
                }
                Value::Int(i) => {
                    2u8.hash(state);
                    i.hash(state);
                }
                Value::Num(x) => {
                    3u8.hash(state);
                    canon_bits(*x).hash(state);
                }
                Value::Str(s) => {
                    4u8.hash(state);
                    s.hash(state);
                }
            }
        }
    }
}

/// Partial aggregate state. The float-feeding variants buffer their
/// observations and fold them in the finisher, left to right, so the
/// chunk-order merge reproduces the serial observation order exactly
/// (same discipline as the engine's CDF accumulators).
#[derive(Debug, Clone)]
enum AggState {
    SumInt(i64),
    SumFloat(Vec<f64>),
    Count(u64),
    Min(Option<Value>),
    Max(Option<Value>),
    Collect(Vec<f64>),
}

#[derive(Clone)]
struct CompiledAgg {
    func: AggFunc,
    arg: Option<BoundExpr>,
    q: f64,
    int_sum: bool,
}

impl CompiledAgg {
    fn new_state(&self) -> AggState {
        match self.func {
            AggFunc::Sum if self.int_sum => AggState::SumInt(0),
            AggFunc::Sum => AggState::SumFloat(Vec::new()),
            AggFunc::Count => AggState::Count(0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Mean | AggFunc::Quantile => AggState::Collect(Vec::new()),
        }
    }

    fn absorb(&self, state: &mut AggState, ctx: &RowCtx<'_>) {
        let v = self.arg.as_ref().map(|e| e.eval(ctx));
        match state {
            AggState::SumInt(acc) => match v {
                Some(Value::Int(i)) => *acc = acc.wrapping_add(i),
                Some(Value::Bool(b)) => *acc = acc.wrapping_add(i64::from(b)),
                _ => {} // Null skipped; Num unreachable (static typing)
            },
            AggState::SumFloat(buf) | AggState::Collect(buf) => {
                if let Some(x) = v.as_ref().and_then(Value::as_f64) {
                    if !x.is_nan() {
                        buf.push(x);
                    }
                }
            }
            AggState::Count(n) => match (&self.arg, v) {
                (None, _) => *n += 1,
                (Some(_), Some(val)) if !val.is_null() => *n += 1,
                _ => {}
            },
            AggState::Min(best) => {
                if let Some(val) = v {
                    if !val.is_null() && !matches!(val, Value::Num(x) if x.is_nan()) {
                        let better = best.as_ref().is_none_or(|b| val.cmp_total(b) == std::cmp::Ordering::Less);
                        if better {
                            *best = Some(val);
                        }
                    }
                }
            }
            AggState::Max(best) => {
                if let Some(val) = v {
                    if !val.is_null() && !matches!(val, Value::Num(x) if x.is_nan()) {
                        let better = best.as_ref().is_none_or(|b| val.cmp_total(b) == std::cmp::Ordering::Greater);
                        if better {
                            *best = Some(val);
                        }
                    }
                }
            }
        }
    }

    fn finish(&self, state: AggState) -> Value {
        match state {
            AggState::SumInt(acc) => Value::Int(acc),
            AggState::SumFloat(buf) => Value::Num(buf.iter().fold(0.0, |a, b| a + b)),
            AggState::Count(n) => Value::Int(n as i64),
            AggState::Min(best) | AggState::Max(best) => best.unwrap_or(Value::Null),
            AggState::Collect(buf) => {
                if buf.is_empty() {
                    Value::Null
                } else if self.func == AggFunc::Mean {
                    Value::Num(buf.iter().fold(0.0, |a, b| a + b) / buf.len() as f64)
                } else {
                    Value::Num(quantile(&buf, self.q))
                }
            }
        }
    }
}

fn merge_states(a: &mut AggState, b: AggState) {
    match (a, b) {
        (AggState::SumInt(x), AggState::SumInt(y)) => *x = x.wrapping_add(y),
        (AggState::SumFloat(x), AggState::SumFloat(y)) => x.extend(y),
        (AggState::Count(x), AggState::Count(y)) => *x += y,
        (AggState::Min(x), AggState::Min(y)) => {
            if let Some(vy) = y {
                let better = x.as_ref().is_none_or(|vx| vy.cmp_total(vx) == std::cmp::Ordering::Less);
                if better {
                    *x = Some(vy);
                }
            }
        }
        (AggState::Max(x), AggState::Max(y)) => {
            if let Some(vy) = y {
                let better = x.as_ref().is_none_or(|vx| vy.cmp_total(vx) == std::cmp::Ordering::Greater);
                if better {
                    *x = Some(vy);
                }
            }
        }
        (AggState::Collect(x), AggState::Collect(y)) => x.extend(y),
        _ => unreachable!("mismatched aggregate states"),
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

enum State {
    /// Frame phase: `None` = all rows, `Some(sel)` = surviving row ids.
    Rows(Option<Vec<u32>>),
    /// Table phase, after a group or project.
    Table(ResultTable),
}

/// Run `pipeline` over `fr` with `workers` threads.
pub fn run(fr: &FlowFrame, pipeline: &Pipeline, workers: usize) -> Result<ResultTable, QueryError> {
    run_with_stats(fr, pipeline, workers).map(|(t, _)| t)
}

/// Like [`run`], also returning scan statistics (rows scanned vs rows
/// surviving pushdown — the counters behind the
/// `query_rows_*_total` telemetry).
pub fn run_with_stats(
    fr: &FlowFrame,
    pipeline: &Pipeline,
    workers: usize,
) -> Result<(ResultTable, QueryStats), QueryError> {
    let m = metrics();
    let _run = satwatch_telemetry::Span::over(m.run_us);
    let mut stats = QueryStats::default();
    let mut state = State::Rows(None);

    for stage in &pipeline.stages {
        state = match (stage, state) {
            (Stage::Match(expr), State::Rows(sel)) => State::Rows(Some(run_match(fr, expr, sel, workers, &mut stats)?)),
            (Stage::Match(expr), State::Table(t)) => State::Table(run_table_match(t, expr)?),
            (Stage::Group { by, aggs }, State::Rows(sel)) => State::Table(run_group(fr, by, aggs, sel, workers)?),
            (Stage::Group { .. }, State::Table(_)) => {
                return Err(QueryError::new("\"group\" over an already-grouped result is not supported"))
            }
            (Stage::Project(cols), State::Rows(sel)) => State::Table(run_frame_project(fr, cols, sel, workers)?),
            (Stage::Project(cols), State::Table(t)) => State::Table(run_table_project(t, cols)?),
            (Stage::Sort(keys), State::Table(mut t)) => {
                let _s = satwatch_telemetry::Span::over(m.sort_us);
                let idx = keys
                    .iter()
                    .map(|(name, desc)| Ok((t.col_index(name)?, *desc)))
                    .collect::<Result<Vec<_>, QueryError>>()?;
                t.rows.sort_by(|a, b| {
                    for (i, desc) in &idx {
                        let ord = a[*i].cmp_total(&b[*i]);
                        let ord = if *desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                State::Table(t)
            }
            (Stage::Sort(_), State::Rows(_)) => {
                return Err(QueryError::new("\"sort\" needs a materialized table — add a group or project stage first"))
            }
            (Stage::Limit(n), State::Table(mut t)) => {
                t.rows.truncate(*n);
                State::Table(t)
            }
            (Stage::Limit(n), State::Rows(sel)) => {
                let mut sel = materialize(fr, sel);
                sel.truncate(*n);
                State::Rows(Some(sel))
            }
        };
    }

    match state {
        State::Table(t) => {
            stats.result_rows = t.rows.len() as u64;
            m.result_rows.add(stats.result_rows);
            Ok((t, stats))
        }
        State::Rows(_) => Err(QueryError::new("pipeline never materialized a table — add a group or project stage")),
    }
}

fn materialize(fr: &FlowFrame, sel: Option<Vec<u32>>) -> Vec<u32> {
    sel.unwrap_or_else(|| (0..fr.len() as u32).collect())
}

/// Match over frame rows: LUT pass first (small-int columns only),
/// residual predicate on the survivors.
fn run_match(
    fr: &FlowFrame,
    expr: &Expr,
    sel: Option<Vec<u32>>,
    workers: usize,
    stats: &mut QueryStats,
) -> Result<Vec<u32>, QueryError> {
    let m = metrics();
    let _s = satwatch_telemetry::Span::over(m.match_us);
    let bound = crate::expr::bind_frame(expr)?;
    let cm = compile_match(&bound, fr);

    let scanned = sel.as_ref().map_or(fr.len(), Vec::len) as u64;
    stats.rows_scanned += scanned;
    m.rows_scanned.add(scanned);

    // Pushdown pass: only the small-int columns are touched.
    let after_luts: Vec<u32> = match &sel {
        None => ordered_par_ranges(
            workers,
            fr.len(),
            |range| range.filter(|&i| cm.luts_pass(fr, i)).map(|i| i as u32).collect::<Vec<u32>>(),
            |mut a: Vec<u32>, b| {
                a.extend(b);
                a
            },
        ),
        Some(sel) => ordered_par_chunks(workers, sel, |chunk| {
            chunk.iter().copied().filter(|&i| cm.luts_pass(fr, i as usize)).collect::<Vec<u32>>()
        })
        .into_iter()
        .flatten()
        .collect(),
    };
    stats.rows_after_pushdown += after_luts.len() as u64;
    m.rows_after_pushdown.add(after_luts.len() as u64);

    // Residual pass: whatever could not become a LUT.
    let out = match &cm.residual {
        None => after_luts,
        Some(res) => ordered_par_chunks(workers, &after_luts, |chunk| {
            chunk.iter().copied().filter(|&i| truthy(&res.eval(&RowCtx::Frame(fr, i as usize)))).collect::<Vec<u32>>()
        })
        .into_iter()
        .flatten()
        .collect(),
    };
    Ok(out)
}

fn run_table_match(t: ResultTable, expr: &Expr) -> Result<ResultTable, QueryError> {
    let m = metrics();
    let _s = satwatch_telemetry::Span::over(m.match_us);
    let cols = t.columns.clone();
    let bound = bind(expr, &|name| cols.iter().position(|c| c == name).map(ColSlot::Table))?;
    let rows = t.rows.into_iter().filter(|row| truthy(&bound.eval(&RowCtx::Table(row)))).collect();
    Ok(ResultTable { columns: t.columns, rows })
}

fn run_group(
    fr: &FlowFrame,
    by: &[(String, Expr)],
    aggs: &[(String, Agg)],
    sel: Option<Vec<u32>>,
    workers: usize,
) -> Result<ResultTable, QueryError> {
    let m = metrics();
    let _s = satwatch_telemetry::Span::over(m.group_us);
    let key_exprs = by.iter().map(|(_, e)| crate::expr::bind_frame(e)).collect::<Result<Vec<_>, _>>()?;
    let compiled: Vec<CompiledAgg> = aggs
        .iter()
        .map(|(_, a)| {
            let arg = a.arg.as_ref().map(crate::expr::bind_frame).transpose()?;
            let int_sum = a.func == AggFunc::Sum && arg.as_ref().is_some_and(BoundExpr::is_integer);
            Ok(CompiledAgg { func: a.func, arg, q: a.q, int_sum })
        })
        .collect::<Result<Vec<_>, QueryError>>()?;

    let sel = materialize(fr, sel);

    // Per-chunk partial maps, merged in chunk order: within a chunk
    // rows are visited in selection (row) order, and the chunk-order
    // merge concatenates buffered observations in that same order, so
    // every aggregate sees the serial observation sequence.
    type Partial = FxHashMap<Key, Vec<AggState>>;
    let partials: Vec<Partial> = ordered_par_chunks(workers, &sel, |chunk| {
        let mut map: Partial = FxHashMap::default();
        for &i in chunk {
            let ctx = RowCtx::Frame(fr, i as usize);
            let key = Key(key_exprs.iter().map(|e| e.eval(&ctx)).collect());
            let states = map.entry(key).or_insert_with(|| compiled.iter().map(CompiledAgg::new_state).collect());
            for (agg, st) in compiled.iter().zip(states.iter_mut()) {
                agg.absorb(st, &ctx);
            }
        }
        map
    });

    let mut merged: Partial = FxHashMap::default();
    for partial in partials {
        for (key, states) in partial {
            match merged.entry(key) {
                Entry::Vacant(v) => {
                    v.insert(states);
                }
                Entry::Occupied(mut o) => {
                    for (a, b) in o.get_mut().iter_mut().zip(states) {
                        merge_states(a, b);
                    }
                }
            }
        }
    }

    // Deterministic output order: sort groups by key under the total
    // value order (hash-map iteration order never escapes).
    let mut groups: Vec<(Key, Vec<AggState>)> = merged.into_iter().collect();
    groups.sort_by(|(a, _), (b, _)| {
        a.0.iter()
            .zip(&b.0)
            .map(|(x, y)| x.cmp_total(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let columns: Vec<String> = by.iter().map(|(n, _)| n.clone()).chain(aggs.iter().map(|(n, _)| n.clone())).collect();
    let rows = groups
        .into_iter()
        .map(|(key, states)| {
            key.0.into_iter().chain(compiled.iter().zip(states).map(|(agg, st)| agg.finish(st))).collect()
        })
        .collect();
    Ok(ResultTable { columns, rows })
}

fn run_frame_project(
    fr: &FlowFrame,
    cols: &[(String, Expr)],
    sel: Option<Vec<u32>>,
    workers: usize,
) -> Result<ResultTable, QueryError> {
    let m = metrics();
    let _s = satwatch_telemetry::Span::over(m.project_us);
    let exprs = cols.iter().map(|(_, e)| crate::expr::bind_frame(e)).collect::<Result<Vec<_>, _>>()?;
    let sel = materialize(fr, sel);
    let rows: Vec<Vec<Value>> = ordered_par_chunks(workers, &sel, |chunk| {
        chunk
            .iter()
            .map(|&i| {
                let ctx = RowCtx::Frame(fr, i as usize);
                exprs.iter().map(|e| e.eval(&ctx)).collect::<Vec<Value>>()
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    Ok(ResultTable { columns: cols.iter().map(|(n, _)| n.clone()).collect(), rows })
}

fn run_table_project(t: ResultTable, cols: &[(String, Expr)]) -> Result<ResultTable, QueryError> {
    let m = metrics();
    let _s = satwatch_telemetry::Span::over(m.project_us);
    let names = t.columns.clone();
    let exprs = cols
        .iter()
        .map(|(_, e)| bind(e, &|name| names.iter().position(|c| c == name).map(ColSlot::Table)))
        .collect::<Result<Vec<_>, _>>()?;
    let rows = t
        .rows
        .iter()
        .map(|row| {
            let ctx = RowCtx::Table(row);
            exprs.iter().map(|e| e.eval(&ctx)).collect()
        })
        .collect();
    Ok(ResultTable { columns: cols.iter().map(|(n, _)| n.clone()).collect(), rows })
}

/// Match rows of `fr` against a bare predicate (no full pipeline) —
/// the pushdown path. Exposed for the pushdown-vs-naive proptest.
pub fn match_rows(fr: &FlowFrame, expr: &Expr, workers: usize) -> Result<Vec<u32>, QueryError> {
    let mut stats = QueryStats::default();
    run_match(fr, expr, None, workers, &mut stats)
}

/// Row-at-a-time reference filter: no pushdown, no parallelism. The
/// oracle the proptest checks [`match_rows`] against.
pub fn match_rows_naive(fr: &FlowFrame, expr: &Expr) -> Result<Vec<u32>, QueryError> {
    let bound = crate::expr::bind_frame(expr)?;
    Ok((0..fr.len()).filter(|&i| truthy(&bound.eval(&RowCtx::Frame(fr, i)))).map(|i| i as u32).collect())
}

// ---------------------------------------------------------------------------
// Paper outputs as pipelines
// ---------------------------------------------------------------------------

/// The paper outputs re-expressed as pipelines. Each `*_via_query`
/// runs the JSON pipeline through the full DSL (parse → pushdown →
/// parallel group-by) and adapts the [`ResultTable`] into the typed
/// report struct; the tests pin `render()` byte-for-byte against the
/// hand-rolled [`crate::engine`] folds at workers 1 and 4.
///
/// The adapters stay exact because each pipeline's aggregates are
/// integer sums (exact and order-insensitive in `i64`) and every
/// derived float below is computed by the same expression, in the
/// same order, as the corresponding engine finisher.
pub mod paper {
    use super::*;

    /// Table 1 — traffic share by L7 protocol.
    pub const TABLE1_PIPELINE: &str = r#"[
        {"group": {"by": {"l7": "l7"}, "aggs": {"bytes": {"sum": "bytes"}}}}
    ]"#;

    /// Figure 2 — traffic and customer share by country.
    pub const FIG2_PIPELINE: &str = r#"[
        {"match": {"not": {"isnull": {"col": "country"}}}},
        {"group": {"by": {"country": "country"}, "aggs": {"bytes": {"sum": "bytes"}}}}
    ]"#;

    /// Figure 3 — per-country protocol mix.
    pub const FIG3_PIPELINE: &str = r#"[
        {"match": {"not": {"isnull": {"col": "country"}}}},
        {"group": {"by": {"country": "country", "l7": "l7"}, "aggs": {"bytes": {"sum": "bytes"}}}}
    ]"#;

    /// Figure 4 — per-country diurnal profile (UTC hours).
    pub const FIG4_PIPELINE: &str = r#"[
        {"match": {"not": {"isnull": {"col": "country"}}}},
        {"group": {"by": {"country": "country", "hour": "hour_utc"}, "aggs": {"bytes": {"sum": "bytes"}}}}
    ]"#;

    fn as_str(v: &Value) -> &str {
        match v {
            Value::Str(s) => s,
            _ => "",
        }
    }

    fn as_u64(v: &Value) -> u64 {
        match v {
            Value::Int(i) => *i as u64,
            _ => 0,
        }
    }

    /// Table 1 through the DSL; byte-identical to
    /// [`crate::engine::table1_frame`].
    pub fn table1_via_query(fr: &FlowFrame, workers: usize) -> Result<Table1, QueryError> {
        let t = run(fr, &Pipeline::parse(TABLE1_PIPELINE)?, workers)?;
        let mut by = [0u64; L7Protocol::ALL.len()];
        let mut total = 0u64;
        for row in &t.rows {
            let p =
                L7Protocol::from_label(as_str(&row[0])).ok_or_else(|| QueryError::new("unknown l7 label in result"))?;
            let b = as_u64(&row[1]);
            by[p.index()] = b;
            total += b;
        }
        let rows =
            L7Protocol::ALL.into_iter().map(|p| (p, 100.0 * by[p.index()] as f64 / total.max(1) as f64)).collect();
        Ok(Table1 { rows })
    }

    /// Figure 2 through the DSL; byte-identical to
    /// [`crate::engine::fig2_frame`].
    pub fn fig2_via_query(fr: &FlowFrame, enr: &Enrichment, workers: usize) -> Result<Fig2, QueryError> {
        let t = run(fr, &Pipeline::parse(FIG2_PIPELINE)?, workers)?;
        let mut vol = [0u64; Country::ALL.len()];
        let mut total = 0u64;
        for row in &t.rows {
            let c =
                Country::from_code(as_str(&row[0])).ok_or_else(|| QueryError::new("unknown country code in result"))?;
            let b = as_u64(&row[1]);
            vol[c.index()] = b;
            total += b;
        }
        let total_customers = enr.country_of.len();
        let mut rows: Vec<(Country, f64, f64, f64)> = Country::ALL
            .into_iter()
            .map(|c| {
                let v = vol[c.index()];
                let customers = enr.customers_in(c);
                let mb_per_day = if customers == 0 || enr.days == 0 {
                    0.0
                } else {
                    v as f64 / 1e6 / customers as f64 / enr.days as f64
                };
                (
                    c,
                    100.0 * v as f64 / total.max(1) as f64,
                    100.0 * customers as f64 / total_customers.max(1) as f64,
                    mb_per_day,
                )
            })
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        Ok(Fig2 { rows })
    }

    /// Figure 3 through the DSL; byte-identical to
    /// [`crate::engine::fig3_frame`].
    pub fn fig3_via_query(fr: &FlowFrame, workers: usize) -> Result<Fig3, QueryError> {
        let t = run(fr, &Pipeline::parse(FIG3_PIPELINE)?, workers)?;
        const N_PROTO: usize = L7Protocol::ALL.len();
        let mut vol = [[0u64; N_PROTO]; Country::ALL.len()];
        let mut seen = [false; Country::ALL.len()];
        for row in &t.rows {
            let c =
                Country::from_code(as_str(&row[0])).ok_or_else(|| QueryError::new("unknown country code in result"))?;
            let p =
                L7Protocol::from_label(as_str(&row[1])).ok_or_else(|| QueryError::new("unknown l7 label in result"))?;
            vol[c.index()][p.index()] = as_u64(&row[2]);
            seen[c.index()] = true;
        }
        let rows = Country::ALL
            .into_iter()
            .filter(|c| seen[c.index()])
            .map(|c| {
                let protos = &vol[c.index()];
                let total: u64 = protos.iter().sum();
                let shares = L7Protocol::ALL
                    .into_iter()
                    .map(|p| (p, 100.0 * protos[p.index()] as f64 / total.max(1) as f64))
                    .collect();
                (c, shares)
            })
            .collect();
        Ok(Fig3 { rows })
    }

    /// Figure 4 through the DSL; byte-identical to
    /// [`crate::engine::fig4_frame`].
    pub fn fig4_via_query(fr: &FlowFrame, workers: usize) -> Result<Fig4, QueryError> {
        let t = run(fr, &Pipeline::parse(FIG4_PIPELINE)?, workers)?;
        let mut by = [[0u64; 24]; Country::ALL.len()];
        let mut seen = [false; Country::ALL.len()];
        for row in &t.rows {
            let c =
                Country::from_code(as_str(&row[0])).ok_or_else(|| QueryError::new("unknown country code in result"))?;
            let h = match row[1] {
                Value::Int(h) if (0..24).contains(&h) => h as usize,
                _ => return Err(QueryError::new("bad hour in result")),
            };
            by[c.index()][h] = as_u64(&row[2]);
            seen[c.index()] = true;
        }
        let rows = Country::ALL
            .into_iter()
            .filter(|c| seen[c.index()])
            .map(|c| {
                let bytes = &by[c.index()];
                let max = bytes.iter().copied().max().unwrap_or(0).max(1) as f64;
                let mut prof = [0.0; 24];
                for (p, b) in prof.iter_mut().zip(bytes) {
                    *p = *b as f64 / max;
                }
                (c, prof)
            })
            .collect();
        Ok(Fig4 { rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(src: &str) -> Pipeline {
        Pipeline::parse(src).unwrap()
    }

    #[test]
    fn parse_rejects_malformed_pipelines() {
        assert!(Pipeline::parse("[]").is_err());
        assert!(Pipeline::parse("42").is_err());
        assert!(Pipeline::parse(r#"[{"warp": 9}]"#).is_err());
        assert!(Pipeline::parse(r#"[{"limit": -1}]"#).is_err());
        assert!(Pipeline::parse(r#"[{"group": {"by": ["x"], "aggs": {}}}]"#).is_err());
        assert!(Pipeline::parse(r#"[{"group": {"by": ["x"], "aggs": {"q": {"quantile": ["y", 2]}}}}]"#).is_err());
    }

    #[test]
    fn parse_accepts_shorthand() {
        let p = pl(r#"[
            {"match": {"eq": [{"col": "country"}, "ES"]}},
            {"group": {"by": ["service"], "aggs": {"n": {"count": true}, "b": {"sum": "bytes"}}}},
            {"sort": ["-b", "service"]},
            {"limit": 5}
        ]"#);
        assert_eq!(p.stages.len(), 4);
        match &p.stages[1] {
            Stage::Group { by, aggs } => {
                assert_eq!(by[0].0, "service");
                assert_eq!(by[0].1, Expr::Col("service".into()));
                assert_eq!(aggs.len(), 2);
            }
            other => panic!("expected group, got {other:?}"),
        }
        match &p.stages[2] {
            Stage::Sort(keys) => {
                assert_eq!(keys[0], ("b".to_string(), true));
                assert_eq!(keys[1], ("service".to_string(), false));
            }
            other => panic!("expected sort, got {other:?}"),
        }
    }

    #[test]
    fn render_text_aligns_and_csv_quotes() {
        let t = ResultTable {
            columns: vec!["name".into(), "n".into()],
            rows: vec![vec![Value::Str("a,b".into()), Value::Int(5)], vec![Value::Null, Value::Int(12345)]],
        };
        let text = t.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "name      n");
        assert_eq!(lines[1], "a,b       5");
        assert_eq!(lines[2], "-     12345");
        let csv = t.render_csv();
        assert_eq!(csv, "name,n\n\"a,b\",5\n,12345\n");
        assert_eq!(t.render_json(), r#"{"columns":["name","n"],"rows":[["a,b",5],[null,12345]]}"#);
    }
}
