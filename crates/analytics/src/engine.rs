//! Columnar analytics engine: every paper table/figure as a fold over
//! a [`FlowFrame`], plus the fused [`report_all`] sweep that fills all
//! of them in a single pass.
//!
//! Each figure is an accumulator with three operations — `absorb` a
//! row, `merge` two partials in chunk order, `finish` into the typed
//! report — driven by [`ordered_par_ranges`]. The byte-equivalence
//! contract with the record-based `agg` functions rests on three facts
//! (DESIGN.md §10):
//!
//! 1. integer tallies are exact and associative, so chunked reduction
//!    equals the serial fold;
//! 2. every `f64` collection concatenates in chunk order, reproducing
//!    the serial observation order before any order-sensitive step
//!    (weighted-CDF tie handling, the CDN mean's incremental sum);
//! 3. map-iteration-order differences between the paths are absorbed
//!    by finishers that sort (`Cdf`, `BoxplotSummary`, row sorts on
//!    unique keys) before rendering.
//!
//! The fused sweep exists because the record path reads the ~250-byte
//! `FlowRecord` once *per figure*; [`report_all`] reads each hot
//! column once, total, and resolves no hash lookups or pattern
//! matches at all — they were paid once at frame build.

use crate::agg::{self, CustomerDay, Enrichment, THROUGHPUT_MIN_BYTES};
use crate::classify::second_level_domain;
use crate::frame::{category_of, FlowFrame, NO_BEAM, NO_CATEGORY, NO_COUNTRY};
use crate::report::*;
use satwatch_internet::ResolverId;
use satwatch_monitor::{DnsRecord, L7Protocol};
use satwatch_simcore::{ordered_par_ranges, FxHashMap, SimDuration, SimTime};
use satwatch_traffic::Country;
use std::net::Ipv4Addr;

const N_PROTO: usize = L7Protocol::ALL.len();
const N_COUNTRY: usize = Country::ALL.len();

/// Shared context for every per-figure fold: the enrichment tables
/// and the country selection. One struct instead of the three ad-hoc
/// call conventions the engine grew historically (`(fr, workers)` vs
/// `(fr, enr, workers)` vs `(fr, enr, countries, workers)`): every
/// `*_frame` entry point now takes `(fr, ctx, workers)`, with
/// genuinely per-figure inputs (the Fig 6 service list, the Table 2
/// DNS log and flow floor) remaining explicit parameters.
///
/// Figures that need only part of the context simply ignore the rest
/// — building a `ReportCtx` costs two pointers.
#[derive(Clone, Copy)]
pub struct ReportCtx<'a> {
    pub enrichment: &'a Enrichment,
    pub countries: &'a [Country],
}

/// Fold rows `0..len` through per-chunk accumulators, reducing in
/// chunk order. The engine's single parallel shape.
fn fold_rows<A, F>(len: usize, workers: usize, absorb: F, merge: fn(A, A) -> A) -> A
where
    A: Send + Default,
    F: Fn(&mut A, usize) + Sync,
{
    ordered_par_ranges(
        workers,
        len,
        |range| {
            let mut acc = A::default();
            for i in range {
                absorb(&mut acc, i);
            }
            acc
        },
        merge,
    )
}

// ---------------------------------------------------------------- Table 1

#[derive(Default)]
struct Table1Acc {
    by: [u64; N_PROTO],
    total: u64,
}

impl Table1Acc {
    fn absorb(&mut self, fr: &FlowFrame, i: usize) {
        let b = fr.flow_bytes(i);
        self.by[fr.l7[i] as usize] += b;
        self.total += b;
    }

    fn merge(mut self, o: Self) -> Self {
        for (a, b) in self.by.iter_mut().zip(o.by) {
            *a += b;
        }
        self.total += o.total;
        self
    }

    fn finish(self) -> Table1 {
        let rows = L7Protocol::ALL
            .into_iter()
            .map(|p| (p, 100.0 * self.by[p.index()] as f64 / self.total.max(1) as f64))
            .collect();
        Table1 { rows }
    }
}

/// [`agg::table1`] as a frame fold (`ctx` unused — kept for the
/// uniform `(fr, ctx, workers)` convention).
pub fn table1_frame(fr: &FlowFrame, _ctx: ReportCtx<'_>, workers: usize) -> Table1 {
    fold_rows(fr.len(), workers, |a: &mut Table1Acc, i| a.absorb(fr, i), Table1Acc::merge).finish()
}

// ---------------------------------------------------------------- Figure 2

#[derive(Default)]
struct Fig2Acc {
    vol: [u64; N_COUNTRY],
    total: u64,
}

impl Fig2Acc {
    fn absorb(&mut self, fr: &FlowFrame, i: usize) {
        let ci = fr.country[i];
        if ci != NO_COUNTRY {
            let b = fr.flow_bytes(i);
            self.vol[ci as usize] += b;
            self.total += b;
        }
    }

    fn merge(mut self, o: Self) -> Self {
        for (a, b) in self.vol.iter_mut().zip(o.vol) {
            *a += b;
        }
        self.total += o.total;
        self
    }

    fn finish(self, enr: &Enrichment) -> Fig2 {
        let total_customers = enr.country_of.len();
        let mut rows: Vec<(Country, f64, f64, f64)> = Country::ALL
            .into_iter()
            .map(|c| {
                let v = self.vol[c.index()];
                let customers = enr.customers_in(c);
                let mb_per_day = if customers == 0 || enr.days == 0 {
                    0.0
                } else {
                    v as f64 / 1e6 / customers as f64 / enr.days as f64
                };
                (
                    c,
                    100.0 * v as f64 / self.total.max(1) as f64,
                    100.0 * customers as f64 / total_customers.max(1) as f64,
                    mb_per_day,
                )
            })
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        Fig2 { rows }
    }
}

/// [`agg::fig2`] as a frame fold.
pub fn fig2_frame(fr: &FlowFrame, ctx: ReportCtx<'_>, workers: usize) -> Fig2 {
    fold_rows(fr.len(), workers, |a: &mut Fig2Acc, i| a.absorb(fr, i), Fig2Acc::merge).finish(ctx.enrichment)
}

// ---------------------------------------------------------------- Figure 3

struct Fig3Acc {
    vol: [[u64; N_PROTO]; N_COUNTRY],
    seen: [bool; N_COUNTRY],
}

impl Default for Fig3Acc {
    fn default() -> Self {
        Fig3Acc { vol: [[0; N_PROTO]; N_COUNTRY], seen: [false; N_COUNTRY] }
    }
}

impl Fig3Acc {
    fn absorb(&mut self, fr: &FlowFrame, i: usize) {
        let ci = fr.country[i];
        if ci != NO_COUNTRY {
            self.vol[ci as usize][fr.l7[i] as usize] += fr.flow_bytes(i);
            self.seen[ci as usize] = true;
        }
    }

    fn merge(mut self, o: Self) -> Self {
        for (av, bv) in self.vol.iter_mut().zip(o.vol) {
            for (a, b) in av.iter_mut().zip(bv) {
                *a += b;
            }
        }
        for (a, b) in self.seen.iter_mut().zip(o.seen) {
            *a |= b;
        }
        self
    }

    fn finish(self) -> Fig3 {
        // `agg::fig3` sorts its rows by `Country::ALL` position, which
        // is exactly the order this emits.
        let rows = Country::ALL
            .into_iter()
            .filter(|c| self.seen[c.index()])
            .map(|c| {
                let protos = &self.vol[c.index()];
                let total: u64 = protos.iter().sum();
                let shares = L7Protocol::ALL
                    .into_iter()
                    .map(|p| (p, 100.0 * protos[p.index()] as f64 / total.max(1) as f64))
                    .collect();
                (c, shares)
            })
            .collect();
        Fig3 { rows }
    }
}

/// [`agg::fig3`] as a frame fold.
pub fn fig3_frame(fr: &FlowFrame, _ctx: ReportCtx<'_>, workers: usize) -> Fig3 {
    fold_rows(fr.len(), workers, |a: &mut Fig3Acc, i| a.absorb(fr, i), Fig3Acc::merge).finish()
}

// ---------------------------------------------------------------- Figure 4

struct Fig4Acc {
    by: [[u64; 24]; N_COUNTRY],
    seen: [bool; N_COUNTRY],
}

impl Default for Fig4Acc {
    fn default() -> Self {
        Fig4Acc { by: [[0; 24]; N_COUNTRY], seen: [false; N_COUNTRY] }
    }
}

impl Fig4Acc {
    fn absorb(&mut self, fr: &FlowFrame, i: usize) {
        let ci = fr.country[i];
        if ci != NO_COUNTRY {
            self.by[ci as usize][fr.hour_utc[i] as usize] += fr.flow_bytes(i);
            self.seen[ci as usize] = true;
        }
    }

    fn merge(mut self, o: Self) -> Self {
        for (av, bv) in self.by.iter_mut().zip(o.by) {
            for (a, b) in av.iter_mut().zip(bv) {
                *a += b;
            }
        }
        for (a, b) in self.seen.iter_mut().zip(o.seen) {
            *a |= b;
        }
        self
    }

    fn finish(self) -> Fig4 {
        let rows = Country::ALL
            .into_iter()
            .filter(|c| self.seen[c.index()])
            .map(|c| {
                let bytes = &self.by[c.index()];
                let max = bytes.iter().copied().max().unwrap_or(0).max(1) as f64;
                let mut prof = [0.0; 24];
                for (p, b) in prof.iter_mut().zip(bytes) {
                    *p = *b as f64 / max;
                }
                (c, prof)
            })
            .collect();
        Fig4 { rows }
    }
}

/// [`agg::fig4`] as a frame fold.
pub fn fig4_frame(fr: &FlowFrame, _ctx: ReportCtx<'_>, workers: usize) -> Fig4 {
    fold_rows(fr.len(), workers, |a: &mut Fig4Acc, i| a.absorb(fr, i), Fig4Acc::merge).finish()
}

// ------------------------------------------------- customer-days (Fig 5–7)

#[derive(Default)]
struct DaysAcc {
    map: FxHashMap<(Ipv4Addr, u64), CustomerDay>,
}

impl DaysAcc {
    fn absorb(&mut self, fr: &FlowFrame, i: usize) {
        let e = self.map.entry((fr.client[i], u64::from(fr.day[i]))).or_default();
        e.flows += 1;
        e.down += fr.bytes_down[i];
        e.up += fr.bytes_up[i];
        if fr.category[i] != NO_CATEGORY {
            *e.by_category.entry(category_of(fr.category[i])).or_default() += fr.flow_bytes(i);
            e.services.insert(fr.services[fr.service[i] as usize]);
        }
    }

    fn merge(mut self, o: Self) -> Self {
        for (k, cd) in o.map {
            match self.map.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().absorb(cd),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(cd);
                }
            }
        }
        self
    }
}

/// [`agg::customer_days`] rebuilt from the frame's pre-resolved
/// category/service columns — no classifier in sight.
pub fn customer_days_frame(fr: &FlowFrame, workers: usize) -> FxHashMap<(Ipv4Addr, u64), CustomerDay> {
    fold_rows(fr.len(), workers, |a: &mut DaysAcc, i| a.absorb(fr, i), DaysAcc::merge).map
}

/// [`agg::fig5`] from a frame-built customer-day rollup.
pub fn fig5_frame(fr: &FlowFrame, ctx: ReportCtx<'_>, workers: usize) -> Fig5 {
    agg::fig5(&customer_days_frame(fr, workers), ctx.enrichment)
}

/// [`agg::fig6`] from a frame-built customer-day rollup. The service
/// list is genuinely per-figure, so it stays an explicit parameter.
pub fn fig6_frame(fr: &FlowFrame, ctx: ReportCtx<'_>, services: &[&'static str], workers: usize) -> Fig6 {
    agg::fig6(&customer_days_frame(fr, workers), ctx.enrichment, services, ctx.countries)
}

/// [`agg::fig7`] from a frame-built customer-day rollup.
pub fn fig7_frame(fr: &FlowFrame, ctx: ReportCtx<'_>, workers: usize) -> Fig7 {
    agg::fig7(&customer_days_frame(fr, workers), ctx.enrichment, ctx.countries)
}

// --------------------------------------------------------------- Figure 8a

struct Fig8aAcc {
    night: [Vec<f64>; N_COUNTRY],
    peak: [Vec<f64>; N_COUNTRY],
}

impl Default for Fig8aAcc {
    fn default() -> Self {
        Fig8aAcc { night: std::array::from_fn(|_| Vec::new()), peak: std::array::from_fn(|_| Vec::new()) }
    }
}

impl Fig8aAcc {
    fn absorb(&mut self, fr: &FlowFrame, i: usize) {
        let ci = fr.country[i];
        let rtt = fr.sat_rtt_ms[i];
        if ci == NO_COUNTRY || rtt.is_nan() {
            return;
        }
        let h = u32::from(fr.local_hour[i]);
        if agg::is_night(h) {
            self.night[ci as usize].push(rtt / 1e3);
        } else if agg::is_peak(h) {
            self.peak[ci as usize].push(rtt / 1e3);
        }
    }

    fn merge(mut self, o: Self) -> Self {
        for (a, b) in self.night.iter_mut().zip(o.night) {
            a.extend(b);
        }
        for (a, b) in self.peak.iter_mut().zip(o.peak) {
            a.extend(b);
        }
        self
    }

    fn finish(self, countries: &[Country]) -> Fig8a {
        let rows = countries
            .iter()
            .filter_map(|c| {
                let n = &self.night[c.index()];
                let p = &self.peak[c.index()];
                if n.is_empty() || p.is_empty() {
                    return None;
                }
                Some((*c, satwatch_simcore::stats::Cdf::from_values(n), satwatch_simcore::stats::Cdf::from_values(p)))
            })
            .collect();
        Fig8a { rows }
    }
}

/// [`agg::fig8a`] as a frame fold.
pub fn fig8a_frame(fr: &FlowFrame, ctx: ReportCtx<'_>, workers: usize) -> Fig8a {
    fold_rows(fr.len(), workers, |a: &mut Fig8aAcc, i| a.absorb(fr, i), Fig8aAcc::merge).finish(ctx.countries)
}

// --------------------------------------------------------------- Figure 8b

#[derive(Default)]
struct Fig8bAcc {
    samples: FxHashMap<u16, Vec<f64>>,
}

impl Fig8bAcc {
    fn absorb(&mut self, fr: &FlowFrame, i: usize) {
        let rtt = fr.sat_rtt_ms[i];
        if fr.country[i] == NO_COUNTRY || rtt.is_nan() || fr.beam[i] == NO_BEAM {
            return;
        }
        if agg::is_peak(u32::from(fr.local_hour[i])) {
            self.samples.entry(fr.beam[i]).or_default().push(rtt / 1e3);
        }
    }

    fn merge(mut self, o: Self) -> Self {
        for (k, v) in o.samples {
            self.samples.entry(k).or_default().extend(v);
        }
        self
    }

    fn finish(self, enr: &Enrichment) -> Fig8b {
        let max_util = enr.beams.iter().map(|b| b.peak_utilization).fold(0.0f64, f64::max).max(1e-9);
        let mut rows = Vec::new();
        for (beam, mut v) in self.samples {
            let info = &enr.beams[beam as usize];
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = v[v.len() / 2];
            rows.push((info.name.clone(), info.country, info.peak_utilization / max_util, median, v.len()));
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        Fig8b { rows }
    }
}

/// [`agg::fig8b`] as a frame fold.
pub fn fig8b_frame(fr: &FlowFrame, ctx: ReportCtx<'_>, workers: usize) -> Fig8b {
    fold_rows(fr.len(), workers, |a: &mut Fig8bAcc, i| a.absorb(fr, i), Fig8bAcc::merge).finish(ctx.enrichment)
}

// ---------------------------------------------------------------- Figure 9

struct Fig9Acc {
    samples: [Vec<(f64, f64)>; N_COUNTRY],
}

impl Default for Fig9Acc {
    fn default() -> Self {
        Fig9Acc { samples: std::array::from_fn(|_| Vec::new()) }
    }
}

impl Fig9Acc {
    fn absorb(&mut self, fr: &FlowFrame, i: usize) {
        let ci = fr.country[i];
        if ci == NO_COUNTRY || fr.ground_rtt_samples[i] == 0 {
            return;
        }
        // chunk-order concatenation keeps these in row order, which
        // `Cdf::from_weighted` relies on for tie-group weight sums
        self.samples[ci as usize].push((fr.ground_rtt_avg[i], fr.flow_bytes(i) as f64));
    }

    fn merge(mut self, o: Self) -> Self {
        for (a, b) in self.samples.iter_mut().zip(o.samples) {
            a.extend(b);
        }
        self
    }

    fn finish(self, countries: &[Country]) -> Fig9 {
        let rows = countries
            .iter()
            .filter_map(|c| {
                let v = &self.samples[c.index()];
                if v.is_empty() {
                    return None;
                }
                let cdf = satwatch_simcore::stats::Cdf::from_weighted(v);
                let med = cdf.quantile(0.5);
                Some((*c, cdf, med))
            })
            .collect();
        Fig9 { rows }
    }
}

/// [`agg::fig9`] as a frame fold.
pub fn fig9_frame(fr: &FlowFrame, ctx: ReportCtx<'_>, workers: usize) -> Fig9 {
    fold_rows(fr.len(), workers, |a: &mut Fig9Acc, i| a.absorb(fr, i), Fig9Acc::merge).finish(ctx.countries)
}

// --------------------------------------------------------------- Figure 11

struct Fig11Acc {
    all: [Vec<f64>; N_COUNTRY],
    night: [Vec<f64>; N_COUNTRY],
    peak: [Vec<f64>; N_COUNTRY],
}

impl Default for Fig11Acc {
    fn default() -> Self {
        Fig11Acc {
            all: std::array::from_fn(|_| Vec::new()),
            night: std::array::from_fn(|_| Vec::new()),
            peak: std::array::from_fn(|_| Vec::new()),
        }
    }
}

impl Fig11Acc {
    fn absorb(&mut self, fr: &FlowFrame, i: usize) {
        let ci = fr.country[i];
        if ci == NO_COUNTRY || fr.bytes_down[i] < THROUGHPUT_MIN_BYTES {
            return;
        }
        let mbps = fr.down_bps[i] / 1e6;
        if mbps <= 0.0 {
            return;
        }
        self.all[ci as usize].push(mbps);
        let h = u32::from(fr.local_hour[i]);
        if agg::is_night(h) {
            self.night[ci as usize].push(mbps);
        } else if agg::is_peak(h) {
            self.peak[ci as usize].push(mbps);
        }
    }

    fn merge(mut self, o: Self) -> Self {
        for (a, b) in self.all.iter_mut().zip(o.all) {
            a.extend(b);
        }
        for (a, b) in self.night.iter_mut().zip(o.night) {
            a.extend(b);
        }
        for (a, b) in self.peak.iter_mut().zip(o.peak) {
            a.extend(b);
        }
        self
    }

    fn finish(self, countries: &[Country]) -> Fig11 {
        use satwatch_simcore::stats::{BoxplotSummary, Cdf};
        let rows = countries
            .iter()
            .filter_map(|c| {
                let v = &self.all[c.index()];
                if v.is_empty() {
                    return None;
                }
                Some((
                    *c,
                    Cdf::from_values(v),
                    BoxplotSummary::from_values(&self.night[c.index()]),
                    BoxplotSummary::from_values(&self.peak[c.index()]),
                ))
            })
            .collect();
        Fig11 { rows }
    }
}

/// [`agg::fig11`] as a frame fold.
pub fn fig11_frame(fr: &FlowFrame, ctx: ReportCtx<'_>, workers: usize) -> Fig11 {
    fold_rows(fr.len(), workers, |a: &mut Fig11Acc, i| a.absorb(fr, i), Fig11Acc::merge).finish(ctx.countries)
}

// ------------------------------------------------------- Table 2 (DNS join)

/// Pre-built DNS side of the Table 2 join: `(client, fqdn)` →
/// time-sorted lookups, exactly as `agg::table_cdn_selection` builds
/// it. Built once, shared read-only by all workers.
pub struct CdnJoin<'a> {
    lookups: FxHashMap<(Ipv4Addr, &'a str), Vec<(SimTime, ResolverId)>>,
}

impl<'a> CdnJoin<'a> {
    pub fn build(dns: &'a [DnsRecord]) -> CdnJoin<'a> {
        let mut lookups: FxHashMap<(Ipv4Addr, &'a str), Vec<(SimTime, ResolverId)>> = FxHashMap::default();
        for d in dns {
            let r = ResolverId::from_address(d.resolver).unwrap_or(ResolverId::Other);
            lookups.entry((d.client, &*d.query)).or_default().push((d.ts, r));
        }
        for v in lookups.values_mut() {
            v.sort_by_key(|(t, _)| *t);
        }
        CdnJoin { lookups }
    }
}

/// Freshness window for attributing a flow to a DNS lookup (30 s, as
/// in the record path).
const CDN_FRESH: SimDuration = SimDuration::from_secs(30);

#[derive(Default)]
struct CdnAcc {
    /// Per-key RTT observations in row order. Kept as a vector (not a
    /// running sum) so the finisher can reproduce the record path's
    /// exact left-to-right f64 summation order.
    acc: FxHashMap<(String, Country, ResolverId), Vec<f64>>,
}

impl CdnAcc {
    fn absorb(&mut self, fr: &FlowFrame, i: usize, join: &CdnJoin<'_>, countries: &[Country]) {
        let (Some(c), Some(domain)) = (fr.country_at(i), fr.domain[i].as_deref()) else {
            return;
        };
        if !countries.contains(&c) || fr.ground_rtt_samples[i] == 0 {
            return;
        }
        let Some(entries) = join.lookups.get(&(fr.client[i], domain)) else {
            return;
        };
        let idx = entries.partition_point(|(t, _)| *t <= fr.first[i]);
        if idx == 0 {
            return;
        }
        let (ts, r) = entries[idx - 1];
        if fr.first[i] - ts > CDN_FRESH {
            return; // stale: likely a different device's lookup
        }
        let sld = second_level_domain(domain);
        self.acc.entry((sld, c, r)).or_default().push(fr.ground_rtt_avg[i]);
    }

    fn merge(mut self, o: Self) -> Self {
        for (k, v) in o.acc {
            self.acc.entry(k).or_default().extend(v);
        }
        self
    }

    fn finish(self, min_flows: usize) -> TableCdnSelection {
        let mut rows: Vec<(String, Country, ResolverId, f64, usize)> = self
            .acc
            .into_iter()
            .filter(|(_, v)| v.len() >= min_flows)
            .map(|((sld, c, r), v)| {
                let n = v.len();
                let sum: f64 = v.into_iter().sum();
                (sld, c, r, sum / n as f64, n)
            })
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        TableCdnSelection { rows }
    }
}

/// [`agg::table_cdn_selection`] as a frame fold over a pre-built
/// [`CdnJoin`]. The DNS log and the minimum-flow floor are join
/// inputs, not report context, so they stay explicit.
pub fn table_cdn_frame(
    fr: &FlowFrame,
    dns: &[DnsRecord],
    ctx: ReportCtx<'_>,
    min_flows: usize,
    workers: usize,
) -> TableCdnSelection {
    let join = CdnJoin::build(dns);
    let countries = ctx.countries;
    fold_rows(fr.len(), workers, |a: &mut CdnAcc, i| a.absorb(fr, i, &join, countries), CdnAcc::merge).finish(min_flows)
}

// ------------------------------------------------------------ fused sweep

/// All paper outputs at once — the result of one fused frame sweep.
#[derive(Clone, Debug)]
pub struct PaperReports {
    pub table1: Table1,
    pub fig2: Fig2,
    pub fig3: Fig3,
    pub fig4: Fig4,
    pub fig5: Fig5,
    pub fig6: Fig6,
    pub fig7: Fig7,
    pub fig8a: Fig8a,
    pub fig8b: Fig8b,
    pub fig9: Fig9,
    pub fig10: Fig10,
    pub table2: TableCdnSelection,
    pub fig11: Fig11,
}

impl PaperReports {
    /// Every report rendered in the CLI `report` command's order.
    /// `fnv1a(render_all())` is the cross-mode report digest.
    pub fn render_all(&self) -> String {
        [
            self.table1.render(),
            self.fig2.render(),
            self.fig3.render(),
            self.fig4.render(),
            self.fig5.render(),
            self.fig6.render(),
            self.fig7.render(),
            self.fig8a.render(),
            self.fig8b.render(),
            self.fig9.render(),
            self.fig10.render(),
            self.table2.render(),
            self.fig11.render(),
        ]
        .join("\n")
    }
}

/// The whole-sweep accumulator: one `absorb` touches every figure's
/// partial state, so a single pass over the columns fills the lot.
#[derive(Default)]
struct MegaAcc {
    table1: Table1Acc,
    fig2: Fig2Acc,
    fig3: Fig3Acc,
    fig4: Fig4Acc,
    days: DaysAcc,
    fig8a: Fig8aAcc,
    fig8b: Fig8bAcc,
    fig9: Fig9Acc,
    fig11: Fig11Acc,
    cdn: CdnAcc,
}

impl MegaAcc {
    fn absorb(&mut self, fr: &FlowFrame, i: usize, join: &CdnJoin<'_>, countries: &[Country]) {
        self.table1.absorb(fr, i);
        self.fig2.absorb(fr, i);
        self.fig3.absorb(fr, i);
        self.fig4.absorb(fr, i);
        self.days.absorb(fr, i);
        self.fig8a.absorb(fr, i);
        self.fig8b.absorb(fr, i);
        self.fig9.absorb(fr, i);
        self.fig11.absorb(fr, i);
        self.cdn.absorb(fr, i, join, countries);
    }

    fn merge(self, o: Self) -> Self {
        MegaAcc {
            table1: self.table1.merge(o.table1),
            fig2: self.fig2.merge(o.fig2),
            fig3: self.fig3.merge(o.fig3),
            fig4: self.fig4.merge(o.fig4),
            days: self.days.merge(o.days),
            fig8a: self.fig8a.merge(o.fig8a),
            fig8b: self.fig8b.merge(o.fig8b),
            fig9: self.fig9.merge(o.fig9),
            fig11: self.fig11.merge(o.fig11),
            cdn: self.cdn.merge(o.cdn),
        }
    }
}

/// Fill every paper output in a single fused sweep over the frame
/// (plus one pass over the DNS log for Fig 10 and the Table 2 join).
/// Byte-identical to running the record-based `agg` functions one by
/// one over the same flows in frame-row order.
pub fn report_all(
    fr: &FlowFrame,
    dns: &[DnsRecord],
    ctx: ReportCtx<'_>,
    services: &[&'static str],
    min_flows: usize,
    workers: usize,
) -> PaperReports {
    let _span = satwatch_telemetry::span("analytics_report_all_us");
    let (enr, countries) = (ctx.enrichment, ctx.countries);
    let join = CdnJoin::build(dns);
    let mega = fold_rows(fr.len(), workers, |a: &mut MegaAcc, i| a.absorb(fr, i, &join, countries), MegaAcc::merge);
    let days = mega.days.map;
    PaperReports {
        table1: mega.table1.finish(),
        fig2: mega.fig2.finish(enr),
        fig3: mega.fig3.finish(),
        fig4: mega.fig4.finish(),
        fig5: agg::fig5(&days, enr),
        fig6: agg::fig6(&days, enr, services, countries),
        fig7: agg::fig7(&days, enr, countries),
        fig8a: mega.fig8a.finish(countries),
        fig8b: mega.fig8b.finish(enr),
        fig9: mega.fig9.finish(countries),
        fig10: agg::fig10_par(dns, enr, countries, workers),
        table2: mega.cdn.finish(min_flows),
        fig11: mega.fig11.finish(countries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::BeamInfo;
    use crate::classify::Classifier;
    use satwatch_monitor::record::RttSummary;
    use satwatch_monitor::FlowRecord;
    use satwatch_simcore::SimDuration;

    fn client(i: u8) -> Ipv4Addr {
        Ipv4Addr::new(77, 0, 0, i)
    }

    fn flow(c: Ipv4Addr, l7: L7Protocol, down: u64, up: u64, hour: u32, domain: Option<&str>) -> FlowRecord {
        FlowRecord {
            client: c,
            server: Ipv4Addr::new(198, 18, 0, 1),
            client_port: 50_000,
            server_port: 443,
            ip_proto: 6,
            first: SimTime::from_secs(hour as u64 * 3600),
            last: SimTime::from_secs(hour as u64 * 3600) + SimDuration::from_secs(10),
            c2s_packets: 5,
            c2s_bytes: up,
            c2s_payload_bytes: up,
            s2c_packets: 10,
            s2c_bytes: down,
            s2c_payload_bytes: down,
            c2s_retrans: 0,
            s2c_retrans: 0,
            early: vec![],
            syn_seen: true,
            fin_seen: true,
            rst_seen: false,
            ground_rtt: RttSummary { samples: 3, min_ms: 11.0, avg_ms: 12.0, max_ms: 14.0, std_ms: 1.0 },
            s2c_data_first: None,
            s2c_data_last: None,
            sat_rtt_ms: Some(600.0),
            l7,
            domain: domain.map(Into::into),
        }
    }

    fn enrichment() -> Enrichment {
        let mut e = Enrichment { days: 1, ..Default::default() };
        e.country_of.insert(client(1), Country::Congo);
        e.country_of.insert(client(2), Country::Spain);
        e.beam_of.insert(client(1), 0);
        e.beam_of.insert(client(2), 1);
        e.beams = vec![
            BeamInfo { name: "cd-0".into(), country: Country::Congo, peak_utilization: 0.9 },
            BeamInfo { name: "es-0".into(), country: Country::Spain, peak_utilization: 0.45 },
        ];
        e
    }

    fn sample_flows() -> Vec<FlowRecord> {
        let mut flows = Vec::new();
        for i in 0..211u32 {
            let c = client(1 + (i % 3) as u8); // client 3 has no country
            let l7 = if i % 3 == 0 { L7Protocol::Quic } else { L7Protocol::TlsHttps };
            let domain = if i % 4 == 0 { Some("video.tiktokv.com") } else { None };
            let mut f = flow(c, l7, 1_000 + u64::from(i) * 7, 100 + u64::from(i), i % 24, domain);
            if i % 5 == 0 {
                f.sat_rtt_ms = None;
            }
            if i % 7 == 0 {
                f.s2c_bytes = THROUGHPUT_MIN_BYTES + u64::from(i);
            }
            flows.push(f);
        }
        flows
    }

    fn sample_dns() -> Vec<DnsRecord> {
        (0..60u64)
            .map(|i| DnsRecord {
                client: client(1 + (i % 2) as u8),
                resolver: if i % 2 == 0 { ResolverId::Google.address() } else { ResolverId::OperatorEu.address() },
                query: "video.tiktokv.com".into(),
                ts: SimTime::from_secs(i * 600),
                response_ms: Some(20.0 + i as f64),
                answers: vec![],
            })
            .collect()
    }

    #[test]
    fn frame_figures_match_record_figures() {
        let flows = sample_flows();
        let dns = sample_dns();
        let enr = enrichment();
        let fr = FlowFrame::from_records(&flows, &enr);
        let classifier = Classifier::standard();
        let top = [Country::Congo, Country::Spain];
        let ctx = ReportCtx { enrichment: &enr, countries: &top };
        for workers in [1, 3] {
            assert_eq!(format!("{:?}", agg::table1(&flows)), format!("{:?}", table1_frame(&fr, ctx, workers)));
            assert_eq!(format!("{:?}", agg::fig2(&flows, &enr)), format!("{:?}", fig2_frame(&fr, ctx, workers)));
            assert_eq!(format!("{:?}", agg::fig3(&flows, &enr)), format!("{:?}", fig3_frame(&fr, ctx, workers)));
            assert_eq!(format!("{:?}", agg::fig4(&flows, &enr)), format!("{:?}", fig4_frame(&fr, ctx, workers)));
            assert_eq!(agg::customer_days(&flows, &classifier), customer_days_frame(&fr, workers));
            assert_eq!(
                format!("{:?}", agg::fig8a(&flows, &enr, &top)),
                format!("{:?}", fig8a_frame(&fr, ctx, workers))
            );
            assert_eq!(format!("{:?}", agg::fig8b(&flows, &enr)), format!("{:?}", fig8b_frame(&fr, ctx, workers)));
            assert_eq!(format!("{:?}", agg::fig9(&flows, &enr, &top)), format!("{:?}", fig9_frame(&fr, ctx, workers)));
            assert_eq!(
                format!("{:?}", agg::fig11(&flows, &enr, &top)),
                format!("{:?}", fig11_frame(&fr, ctx, workers))
            );
            assert_eq!(
                format!("{:?}", agg::table_cdn_selection(&flows, &dns, &enr, &top, 1)),
                format!("{:?}", table_cdn_frame(&fr, &dns, ctx, 1, workers))
            );
        }
    }

    #[test]
    fn fused_sweep_matches_individual_folds() {
        let flows = sample_flows();
        let dns = sample_dns();
        let enr = enrichment();
        let fr = FlowFrame::from_records(&flows, &enr);
        let top = [Country::Congo, Country::Spain];
        let services = ["Tiktok", "Google"];
        let ctx = ReportCtx { enrichment: &enr, countries: &top };
        for workers in [1, 4] {
            let all = report_all(&fr, &dns, ctx, &services, 1, workers);
            assert_eq!(format!("{:?}", all.table1), format!("{:?}", table1_frame(&fr, ctx, 1)));
            assert_eq!(format!("{:?}", all.fig4), format!("{:?}", fig4_frame(&fr, ctx, 1)));
            assert_eq!(format!("{:?}", all.fig9), format!("{:?}", fig9_frame(&fr, ctx, 1)));
            assert_eq!(format!("{:?}", all.table2), format!("{:?}", table_cdn_frame(&fr, &dns, ctx, 1, 1)));
            assert_eq!(format!("{:?}", all.fig6), format!("{:?}", fig6_frame(&fr, ctx, &services, 1)));
            assert!(!all.render_all().is_empty());
        }
    }
}
