//! Typed expression tree for the aggregation-pipeline DSL, plus the
//! tiny JSON reader that pipelines are written in.
//!
//! Three layers, front to back:
//!
//! * [`Json`] — a zero-dependency, order-preserving JSON value and
//!   parser. Object key order is kept (a `Vec` of pairs, not a map)
//!   because the order of `"by"` / `"project"` entries *is* the
//!   column order of the result table.
//! * [`Expr`] — the parsed expression: column refs by *name*,
//!   literals, comparisons, boolean ops, arithmetic. Produced by
//!   [`Expr::from_json`], still unresolved.
//! * [`BoundExpr`] — the compiled expression: every column name is
//!   resolved to a [`ColSlot`] (a [`FrameCol`] when compiling against
//!   a [`FlowFrame`], a result-table column index after a group or
//!   project stage). Evaluation ([`BoundExpr::eval`]) is match-on-enum,
//!   no string compares per row.
//!
//! Predicate pushdown lives here too: [`compile_match`] splits a
//! `Match` predicate into conjuncts, and every conjunct that touches
//! exactly one *small-int* column (country, beam, category, service,
//! local-hour, hour-utc, l7 — the columns `FrameBuilder` pre-resolved
//! to `u8`/`u16`) is compiled into a lookup table over that column's
//! raw domain. The scan then tests one or two bytes per row and never
//! touches a wide column until the surviving rows are known.

use crate::frame::{FlowFrame, NO_BEAM, NO_CATEGORY, NO_COUNTRY, NO_HOUR, NO_SERVICE};
use satwatch_monitor::L7Protocol;
use satwatch_traffic::{Category, Country};
use std::cmp::Ordering;
use std::fmt;

/// Error raised while parsing or compiling a pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError(pub String);

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query error: {}", self.0)
    }
}

impl std::error::Error for QueryError {}

impl QueryError {
    pub(crate) fn new(msg: impl Into<String>) -> QueryError {
        QueryError(msg.into())
    }
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// An order-preserving JSON value. Integers that fit `i64` parse as
/// [`Json::Int`]; everything else numeric is [`Json::Num`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse `src` as a single JSON value (trailing whitespace only).
    pub fn parse(src: &str) -> Result<Json, QueryError> {
        let mut p = JsonParser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: &str) -> QueryError {
        QueryError::new(format!("{msg} (at byte {})", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), QueryError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, QueryError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, QueryError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, QueryError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, QueryError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not worth the code here:
                            // pipeline specs are ASCII in practice.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not a byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, QueryError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

/// A runtime value flowing through a pipeline: what a column ref or
/// expression evaluates to for one row.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
}

impl Value {
    /// True when this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric coercion: `Int`/`Num` as `f64`, `Bool` as 0/1, others
    /// `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Num(x) => Some(*x),
            Value::Bool(b) => Some(f64::from(*b)),
            _ => None,
        }
    }

    /// Total order over all values, used for group-key ordering and
    /// `sort` stages: Null < Bool < numbers < Str; `Int` and `Num`
    /// compare numerically (NaN greatest, `Int` before an equal `Num`
    /// to break ties deterministically).
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Num(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a @ (Value::Int(_) | Value::Num(_)), b @ (Value::Int(_) | Value::Num(_))) => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                match (x.is_nan(), y.is_nan()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    (false, false) => x.partial_cmp(&y).unwrap(),
                }
                // Tie-break Int-vs-Num so the order is total.
                .then_with(|| {
                    let vr = |v: &Value| u8::from(matches!(v, Value::Num(_)));
                    vr(a).cmp(&vr(b))
                })
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// SQL-style comparison for `eq`/`lt`/…: `None` when either side
    /// is null, NaN is involved, or the types are not comparable —
    /// every comparison operator then evaluates to `false`.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a @ (Value::Int(_) | Value::Num(_)), b @ (Value::Int(_) | Value::Num(_))) => {
                a.as_f64().unwrap().partial_cmp(&b.as_f64().unwrap())
            }
            _ => None,
        }
    }

    /// Render for the aligned-text table: `-` for null, shortest
    /// round-trip for floats.
    pub fn render_text(&self) -> String {
        match self {
            Value::Null => "-".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Num(x) => format!("{x}"),
            Value::Str(s) => s.clone(),
        }
    }

    /// True when the value is numeric (for right-alignment).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Num(_))
    }
}

impl From<&Json> for Value {
    fn from(j: &Json) -> Value {
        match j {
            Json::Null => Value::Null,
            Json::Bool(b) => Value::Bool(*b),
            Json::Int(i) => Value::Int(*i),
            Json::Num(x) => Value::Num(*x),
            Json::Str(s) => Value::Str(s.clone()),
            // Arrays/objects cannot be literals; the pipeline parser
            // rejects them before this conversion is reachable.
            Json::Arr(_) | Json::Obj(_) => Value::Null,
        }
    }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn holds(self, ord: Option<Ordering>) -> bool {
        match (self, ord) {
            (_, None) => false,
            (CmpOp::Eq, Some(o)) => o == Ordering::Equal,
            (CmpOp::Ne, Some(o)) => o != Ordering::Equal,
            (CmpOp::Lt, Some(o)) => o == Ordering::Less,
            (CmpOp::Le, Some(o)) => o != Ordering::Greater,
            (CmpOp::Gt, Some(o)) => o == Ordering::Greater,
            (CmpOp::Ge, Some(o)) => o != Ordering::Less,
        }
    }
}

/// Arithmetic operators. `div` always yields a float; the others stay
/// in `i64` (wrapping) when both operands are integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// A parsed, unresolved expression: column refs are still names.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Col(String),
    Lit(Value),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    All(Vec<Expr>),
    Any(Vec<Expr>),
    Not(Box<Expr>),
    IsNull(Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Parse an expression from its JSON form:
    ///
    /// * `{"col": "service"}` — column reference
    /// * bare scalars (`42`, `"ES"`, `true`, `null`) — literals
    /// * `{"eq": [a, b]}` (also `ne`/`lt`/`le`/`gt`/`ge`)
    /// * `{"all": [e, …]}` / `{"any": [e, …]}` / `{"not": e}`
    /// * `{"isnull": e}`
    /// * `{"add": [a, b]}` (also `sub`/`mul`/`div`)
    pub fn from_json(j: &Json) -> Result<Expr, QueryError> {
        match j {
            Json::Null | Json::Bool(_) | Json::Int(_) | Json::Num(_) | Json::Str(_) => Ok(Expr::Lit(Value::from(j))),
            Json::Arr(_) => Err(QueryError::new("bare arrays are not expressions")),
            Json::Obj(fields) => {
                if fields.len() != 1 {
                    return Err(QueryError::new(
                        "an expression object must have exactly one key (an operator or \"col\")",
                    ));
                }
                let (op, arg) = &fields[0];
                match op.as_str() {
                    "col" => match arg {
                        Json::Str(name) => Ok(Expr::Col(name.clone())),
                        _ => Err(QueryError::new("\"col\" takes a column name string")),
                    },
                    "lit" => match arg {
                        Json::Arr(_) | Json::Obj(_) => {
                            Err(QueryError::new("\"lit\" takes a scalar"))
                        }
                        _ => Ok(Expr::Lit(Value::from(arg))),
                    },
                    "eq" | "ne" | "lt" | "le" | "gt" | "ge" => {
                        let cmp = match op.as_str() {
                            "eq" => CmpOp::Eq,
                            "ne" => CmpOp::Ne,
                            "lt" => CmpOp::Lt,
                            "le" => CmpOp::Le,
                            "gt" => CmpOp::Gt,
                            _ => CmpOp::Ge,
                        };
                        let (a, b) = two_args(op, arg)?;
                        Ok(Expr::Cmp(cmp, Box::new(a), Box::new(b)))
                    }
                    "all" | "any" => {
                        let Json::Arr(items) = arg else {
                            return Err(QueryError::new(format!("\"{op}\" takes an array")));
                        };
                        let exprs =
                            items.iter().map(Expr::from_json).collect::<Result<Vec<_>, _>>()?;
                        if exprs.is_empty() {
                            return Err(QueryError::new(format!("\"{op}\" needs at least one operand")));
                        }
                        Ok(if op == "all" { Expr::All(exprs) } else { Expr::Any(exprs) })
                    }
                    "not" => Ok(Expr::Not(Box::new(Expr::from_json(arg)?))),
                    "isnull" => Ok(Expr::IsNull(Box::new(Expr::from_json(arg)?))),
                    "add" | "sub" | "mul" | "div" => {
                        let ar = match op.as_str() {
                            "add" => ArithOp::Add,
                            "sub" => ArithOp::Sub,
                            "mul" => ArithOp::Mul,
                            _ => ArithOp::Div,
                        };
                        let (a, b) = two_args(op, arg)?;
                        Ok(Expr::Arith(ar, Box::new(a), Box::new(b)))
                    }
                    other => Err(QueryError::new(format!(
                        "unknown expression operator \"{other}\" (expected col/lit/{}/all/any/not/isnull/add/sub/mul/div)",
                        "eq/ne/lt/le/gt/ge"
                    ))),
                }
            }
        }
    }
}

fn two_args(op: &str, arg: &Json) -> Result<(Expr, Expr), QueryError> {
    let Json::Arr(items) = arg else {
        return Err(QueryError::new(format!("\"{op}\" takes a two-element array")));
    };
    if items.len() != 2 {
        return Err(QueryError::new(format!("\"{op}\" takes exactly two operands, got {}", items.len())));
    }
    Ok((Expr::from_json(&items[0])?, Expr::from_json(&items[1])?))
}

// ---------------------------------------------------------------------------
// Column catalog
// ---------------------------------------------------------------------------

/// A queryable `FlowFrame` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameCol {
    Country,
    Beam,
    Category,
    Service,
    LocalHour,
    HourUtc,
    Day,
    L7,
    BytesUp,
    BytesDown,
    Bytes,
    GroundRttAvg,
    GroundRttSamples,
    SatRttMs,
    DownBps,
    DurS,
    Client,
    Domain,
}

/// Name → column table, also the reference list for error messages
/// and docs.
pub const FRAME_COLS: &[(&str, FrameCol)] = &[
    ("country", FrameCol::Country),
    ("beam", FrameCol::Beam),
    ("category", FrameCol::Category),
    ("service", FrameCol::Service),
    ("local_hour", FrameCol::LocalHour),
    ("hour_utc", FrameCol::HourUtc),
    ("day", FrameCol::Day),
    ("l7", FrameCol::L7),
    ("bytes_up", FrameCol::BytesUp),
    ("bytes_down", FrameCol::BytesDown),
    ("bytes", FrameCol::Bytes),
    ("ground_rtt_avg", FrameCol::GroundRttAvg),
    ("ground_rtt_samples", FrameCol::GroundRttSamples),
    ("sat_rtt_ms", FrameCol::SatRttMs),
    ("down_bps", FrameCol::DownBps),
    ("dur_s", FrameCol::DurS),
    ("client", FrameCol::Client),
    ("domain", FrameCol::Domain),
];

impl FrameCol {
    /// Resolve a column name.
    pub fn from_name(name: &str) -> Option<FrameCol> {
        FRAME_COLS.iter().find(|(n, _)| *n == name).map(|(_, c)| *c)
    }

    /// The canonical name of this column.
    pub fn name(self) -> &'static str {
        FRAME_COLS.iter().find(|(_, c)| *c == self).map(|(n, _)| *n).unwrap()
    }

    /// The value of this column for row `i`.
    pub fn value(self, fr: &FlowFrame, i: usize) -> Value {
        match self {
            FrameCol::Country => match fr.country_at(i) {
                Some(c) => Value::Str(c.code().to_string()),
                None => Value::Null,
            },
            FrameCol::Beam => match fr.beam_at(i) {
                Some(b) => Value::Int(i64::from(b)),
                None => Value::Null,
            },
            FrameCol::Category => match fr.category_at(i) {
                Some(c) => Value::Str(c.label().to_string()),
                None => Value::Null,
            },
            FrameCol::Service => match fr.service_at(i) {
                Some(s) => Value::Str(s.to_string()),
                None => Value::Null,
            },
            FrameCol::LocalHour => match fr.local_hour_at(i) {
                Some(h) => Value::Int(i64::from(h)),
                None => Value::Null,
            },
            FrameCol::HourUtc => Value::Int(i64::from(fr.hour_utc[i])),
            FrameCol::Day => Value::Int(i64::from(fr.day[i])),
            FrameCol::L7 => Value::Str(crate::frame::l7_of(fr.l7[i]).label().to_string()),
            FrameCol::BytesUp => Value::Int(fr.bytes_up[i] as i64),
            FrameCol::BytesDown => Value::Int(fr.bytes_down[i] as i64),
            FrameCol::Bytes => Value::Int(fr.flow_bytes(i) as i64),
            FrameCol::GroundRttAvg => {
                if fr.ground_rtt_samples[i] > 0 {
                    Value::Num(fr.ground_rtt_avg[i])
                } else {
                    Value::Null
                }
            }
            FrameCol::GroundRttSamples => Value::Int(fr.ground_rtt_samples[i] as i64),
            FrameCol::SatRttMs => match fr.sat_rtt_at(i) {
                Some(r) => Value::Num(r),
                None => Value::Null,
            },
            FrameCol::DownBps => Value::Num(fr.down_bps[i]),
            FrameCol::DurS => Value::Num(fr.dur_s[i]),
            FrameCol::Client => Value::Str(fr.client[i].to_string()),
            FrameCol::Domain => match &fr.domain[i] {
                Some(d) => Value::Str(d.to_string()),
                None => Value::Null,
            },
        }
    }

    /// The pre-resolved small-int view of this column, when it has
    /// one (the pushdown targets).
    pub fn small(self) -> Option<SmallCol> {
        match self {
            FrameCol::Country => Some(SmallCol::Country),
            FrameCol::Beam => Some(SmallCol::Beam),
            FrameCol::Category => Some(SmallCol::Category),
            FrameCol::Service => Some(SmallCol::Service),
            FrameCol::LocalHour => Some(SmallCol::LocalHour),
            FrameCol::HourUtc => Some(SmallCol::HourUtc),
            FrameCol::L7 => Some(SmallCol::L7),
            _ => None,
        }
    }

    /// True when every value of this column is `Int`, `Bool`, or
    /// `Null` — the "sum stays exact in i64" set.
    pub fn is_integer(self) -> bool {
        matches!(
            self,
            FrameCol::Beam
                | FrameCol::LocalHour
                | FrameCol::HourUtc
                | FrameCol::Day
                | FrameCol::BytesUp
                | FrameCol::BytesDown
                | FrameCol::Bytes
                | FrameCol::GroundRttSamples
        )
    }
}

/// A small-int column the pushdown can compile lookup tables for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmallCol {
    Country,
    Beam,
    Category,
    Service,
    LocalHour,
    HourUtc,
    L7,
}

impl SmallCol {
    /// Size of the raw domain: 256 for `u8`-backed columns, 65536 for
    /// `u16`-backed ones.
    pub fn domain(self) -> usize {
        match self {
            SmallCol::Beam | SmallCol::Service => 1 << 16,
            _ => 1 << 8,
        }
    }

    /// The raw (sentinel-encoded) value of row `i`, widened to usize.
    #[inline]
    pub fn raw(self, fr: &FlowFrame, i: usize) -> usize {
        match self {
            SmallCol::Country => fr.country[i] as usize,
            SmallCol::Beam => fr.beam[i] as usize,
            SmallCol::Category => fr.category[i] as usize,
            SmallCol::Service => fr.service[i] as usize,
            SmallCol::LocalHour => fr.local_hour[i] as usize,
            SmallCol::HourUtc => fr.hour_utc[i] as usize,
            SmallCol::L7 => fr.l7[i] as usize,
        }
    }

    /// The [`Value`] a raw cell decodes to — must agree with
    /// [`FrameCol::value`] for every raw value that actually occurs
    /// (asserted by tests).
    pub fn value_of_raw(self, fr: &FlowFrame, raw: usize) -> Value {
        match self {
            SmallCol::Country => {
                if raw != NO_COUNTRY as usize && raw < Country::ALL.len() {
                    Value::Str(Country::ALL[raw].code().to_string())
                } else {
                    Value::Null
                }
            }
            SmallCol::Beam => {
                if raw != NO_BEAM as usize {
                    Value::Int(raw as i64)
                } else {
                    Value::Null
                }
            }
            SmallCol::Category => {
                if raw != NO_CATEGORY as usize && raw < Category::ALL.len() {
                    Value::Str(Category::ALL[raw].label().to_string())
                } else {
                    Value::Null
                }
            }
            SmallCol::Service => {
                if raw != NO_SERVICE as usize && raw < fr.services.len() {
                    Value::Str(fr.services[raw].to_string())
                } else {
                    Value::Null
                }
            }
            SmallCol::LocalHour => {
                if raw != NO_HOUR as usize {
                    Value::Int(raw as i64)
                } else {
                    Value::Null
                }
            }
            SmallCol::HourUtc => Value::Int(raw as i64),
            SmallCol::L7 => {
                if raw < L7Protocol::ALL.len() {
                    Value::Str(L7Protocol::ALL[raw].label().to_string())
                } else {
                    Value::Null
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bound expressions
// ---------------------------------------------------------------------------

/// Where a resolved column ref reads from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColSlot {
    /// A `FlowFrame` column (frame-phase stages).
    Frame(FrameCol),
    /// Column `i` of the current result table (table-phase stages).
    Table(usize),
}

/// A compiled expression: column names resolved, ready to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    Col(ColSlot),
    Lit(Value),
    Cmp(CmpOp, Box<BoundExpr>, Box<BoundExpr>),
    All(Vec<BoundExpr>),
    Any(Vec<BoundExpr>),
    Not(Box<BoundExpr>),
    IsNull(Box<BoundExpr>),
    Arith(ArithOp, Box<BoundExpr>, Box<BoundExpr>),
}

/// Resolve every column name in `e` through `resolve`.
pub fn bind(e: &Expr, resolve: &dyn Fn(&str) -> Option<ColSlot>) -> Result<BoundExpr, QueryError> {
    Ok(match e {
        Expr::Col(name) => BoundExpr::Col(
            resolve(name).ok_or_else(|| QueryError::new(format!("unknown column \"{name}\" in this stage")))?,
        ),
        Expr::Lit(v) => BoundExpr::Lit(v.clone()),
        Expr::Cmp(op, a, b) => BoundExpr::Cmp(*op, Box::new(bind(a, resolve)?), Box::new(bind(b, resolve)?)),
        Expr::All(es) => BoundExpr::All(es.iter().map(|e| bind(e, resolve)).collect::<Result<_, _>>()?),
        Expr::Any(es) => BoundExpr::Any(es.iter().map(|e| bind(e, resolve)).collect::<Result<_, _>>()?),
        Expr::Not(a) => BoundExpr::Not(Box::new(bind(a, resolve)?)),
        Expr::IsNull(a) => BoundExpr::IsNull(Box::new(bind(a, resolve)?)),
        Expr::Arith(op, a, b) => BoundExpr::Arith(*op, Box::new(bind(a, resolve)?), Box::new(bind(b, resolve)?)),
    })
}

/// Bind against the frame column catalog only.
pub fn bind_frame(e: &Expr) -> Result<BoundExpr, QueryError> {
    bind(e, &|name| FrameCol::from_name(name).map(ColSlot::Frame))
}

/// The evaluation context for one row.
#[derive(Clone, Copy)]
pub enum RowCtx<'a> {
    /// Row `i` of a frame.
    Frame(&'a FlowFrame, usize),
    /// A materialized result-table row.
    Table(&'a [Value]),
    /// LUT construction: the single frame column `col` reads `value`;
    /// any other column ref reads Null (unreachable for pushed
    /// conjuncts, which reference exactly one column).
    Subst(FrameCol, &'a Value),
}

impl BoundExpr {
    /// Evaluate for one row.
    pub fn eval(&self, ctx: &RowCtx<'_>) -> Value {
        match self {
            BoundExpr::Col(slot) => match (slot, ctx) {
                (ColSlot::Frame(c), RowCtx::Frame(fr, i)) => c.value(fr, *i),
                (ColSlot::Table(i), RowCtx::Table(row)) => row.get(*i).cloned().unwrap_or(Value::Null),
                (ColSlot::Frame(c), RowCtx::Subst(target, v)) => {
                    if c == target {
                        (*v).clone()
                    } else {
                        Value::Null
                    }
                }
                _ => Value::Null,
            },
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Cmp(op, a, b) => Value::Bool(op.holds(a.eval(ctx).compare(&b.eval(ctx)))),
            BoundExpr::All(es) => Value::Bool(es.iter().all(|e| truthy(&e.eval(ctx)))),
            BoundExpr::Any(es) => Value::Bool(es.iter().any(|e| truthy(&e.eval(ctx)))),
            BoundExpr::Not(a) => Value::Bool(!truthy(&a.eval(ctx))),
            BoundExpr::IsNull(a) => Value::Bool(a.eval(ctx).is_null()),
            BoundExpr::Arith(op, a, b) => arith(*op, a.eval(ctx), b.eval(ctx)),
        }
    }

    /// Collect the frame columns this expression reads.
    pub fn frame_cols(&self, out: &mut Vec<FrameCol>) {
        match self {
            BoundExpr::Col(ColSlot::Frame(c)) => {
                if !out.contains(c) {
                    out.push(*c);
                }
            }
            BoundExpr::Col(ColSlot::Table(_)) | BoundExpr::Lit(_) => {}
            BoundExpr::Cmp(_, a, b) | BoundExpr::Arith(_, a, b) => {
                a.frame_cols(out);
                b.frame_cols(out);
            }
            BoundExpr::All(es) | BoundExpr::Any(es) => {
                for e in es {
                    e.frame_cols(out);
                }
            }
            BoundExpr::Not(a) | BoundExpr::IsNull(a) => a.frame_cols(out),
        }
    }

    /// Conservative static typing: true when this expression can only
    /// evaluate to `Int`, `Bool`, or `Null` — which lets a `sum`
    /// aggregate accumulate in exact, order-insensitive `i64`.
    pub fn is_integer(&self) -> bool {
        match self {
            BoundExpr::Col(ColSlot::Frame(c)) => c.is_integer(),
            BoundExpr::Col(ColSlot::Table(_)) => false,
            BoundExpr::Lit(v) => matches!(v, Value::Int(_) | Value::Bool(_) | Value::Null),
            BoundExpr::Cmp(..) | BoundExpr::IsNull(_) | BoundExpr::Not(_) => true,
            BoundExpr::All(_) | BoundExpr::Any(_) => true,
            BoundExpr::Arith(ArithOp::Div, ..) => false,
            BoundExpr::Arith(_, a, b) => a.is_integer() && b.is_integer(),
        }
    }
}

/// Boolean coercion for filters: only `Bool(true)` passes.
pub fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

fn arith(op: ArithOp, a: Value, b: Value) -> Value {
    // Booleans coerce to 0/1 so indicator sums work.
    let int_of = |v: &Value| match v {
        Value::Int(i) => Some(*i),
        Value::Bool(b) => Some(i64::from(*b)),
        _ => None,
    };
    if a.is_null() || b.is_null() {
        return Value::Null;
    }
    if op != ArithOp::Div {
        if let (Some(x), Some(y)) = (int_of(&a), int_of(&b)) {
            return Value::Int(match op {
                ArithOp::Add => x.wrapping_add(y),
                ArithOp::Sub => x.wrapping_sub(y),
                ArithOp::Mul => x.wrapping_mul(y),
                ArithOp::Div => unreachable!(),
            });
        }
    }
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => Value::Num(match op {
            ArithOp::Add => x + y,
            ArithOp::Sub => x - y,
            ArithOp::Mul => x * y,
            ArithOp::Div => x / y,
        }),
        _ => Value::Null,
    }
}

// ---------------------------------------------------------------------------
// Predicate pushdown
// ---------------------------------------------------------------------------

/// A compiled lookup table: row passes iff `pass[col.raw(fr, i)]`.
pub struct Lut {
    pub col: SmallCol,
    pub pass: Vec<bool>,
}

/// A `Match` predicate compiled for the frame scan: lookup-table
/// conjuncts over small-int columns first, then an optional residual
/// expression for whatever could not be pushed.
pub struct CompiledMatch {
    pub luts: Vec<Lut>,
    pub residual: Option<BoundExpr>,
    /// How many conjuncts were pushed into LUTs (observability).
    pub pushed: usize,
}

impl CompiledMatch {
    /// Does row `i` pass every lookup table?
    #[inline]
    pub fn luts_pass(&self, fr: &FlowFrame, i: usize) -> bool {
        self.luts.iter().all(|l| l.pass[l.col.raw(fr, i)])
    }
}

fn split_and(e: &BoundExpr, out: &mut Vec<BoundExpr>) {
    match e {
        BoundExpr::All(es) => {
            for sub in es {
                split_and(sub, out);
            }
        }
        other => out.push(other.clone()),
    }
}

/// Compile a bound `Match` predicate: flatten the top-level `all`,
/// turn every conjunct that reads exactly one small-int column into a
/// [`Lut`] (by evaluating the conjunct over the column's whole raw
/// domain), and re-join the rest as the residual.
pub fn compile_match(expr: &BoundExpr, fr: &FlowFrame) -> CompiledMatch {
    let mut conjuncts = Vec::new();
    split_and(expr, &mut conjuncts);

    let mut luts = Vec::new();
    let mut rest = Vec::new();
    for c in conjuncts {
        let mut cols = Vec::new();
        c.frame_cols(&mut cols);
        let small = if cols.len() == 1 { cols[0].small() } else { None };
        match small {
            Some(sc) => {
                let target = cols[0];
                let pass = (0..sc.domain())
                    .map(|raw| {
                        let v = sc.value_of_raw(fr, raw);
                        truthy(&c.eval(&RowCtx::Subst(target, &v)))
                    })
                    .collect();
                luts.push(Lut { col: sc, pass });
            }
            None => rest.push(c),
        }
    }

    let pushed = luts.len();
    let residual = match rest.len() {
        0 => None,
        1 => Some(rest.pop().unwrap()),
        _ => Some(BoundExpr::All(rest)),
    };
    CompiledMatch { luts, residual, pushed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parses_scalars_and_nesting() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("2.5e1").unwrap(), Json::Num(25.0));
        assert_eq!(Json::parse(r#""a\n\"b\"""#).unwrap(), Json::Str("a\n\"b\"".to_string()));
        let j = Json::parse(r#"{"b": 1, "a": [2, {"c": null}]}"#).unwrap();
        let Json::Obj(fields) = &j else { panic!() };
        // Key order preserved.
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
        assert_eq!(j.get("b"), Some(&Json::Int(1)));
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn expr_parse_shapes() {
        let e = Expr::from_json(&Json::parse(r#"{"eq": [{"col": "country"}, "ES"]}"#).unwrap()).unwrap();
        assert_eq!(
            e,
            Expr::Cmp(CmpOp::Eq, Box::new(Expr::Col("country".into())), Box::new(Expr::Lit(Value::Str("ES".into()))))
        );
        assert!(Expr::from_json(&Json::parse(r#"{"frobnicate": 1}"#).unwrap()).is_err());
        assert!(Expr::from_json(&Json::parse(r#"{"eq": [1]}"#).unwrap()).is_err());
    }

    #[test]
    fn value_compare_null_and_nan_are_false() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Num(f64::NAN).compare(&Value::Num(1.0)), None);
        assert_eq!(Value::Str("a".into()).compare(&Value::Int(1)), None);
        assert!(CmpOp::Ne.holds(Value::Int(1).compare(&Value::Int(2))));
        assert!(!CmpOp::Eq.holds(Value::Null.compare(&Value::Null)));
    }

    #[test]
    fn value_total_order_is_total() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(3),
            Value::Num(3.0),
            Value::Num(f64::NAN),
            Value::Str("x".into()),
        ];
        for a in &vals {
            assert_eq!(a.cmp_total(a), Ordering::Equal);
            for b in &vals {
                assert_eq!(a.cmp_total(b), b.cmp_total(a).reverse());
            }
        }
        // Int(3) sorts before Num(3.0), both before Num(NaN), all before Str.
        assert_eq!(Value::Int(3).cmp_total(&Value::Num(3.0)), Ordering::Less);
        assert_eq!(Value::Num(3.0).cmp_total(&Value::Num(f64::NAN)), Ordering::Less);
    }

    #[test]
    fn arith_int_stays_int_div_is_float() {
        assert_eq!(arith(ArithOp::Add, Value::Int(2), Value::Int(3)), Value::Int(5));
        assert_eq!(arith(ArithOp::Mul, Value::Bool(true), Value::Int(7)), Value::Int(7));
        assert_eq!(arith(ArithOp::Div, Value::Int(1), Value::Int(2)), Value::Num(0.5));
        assert_eq!(arith(ArithOp::Add, Value::Null, Value::Int(1)), Value::Null);
        assert_eq!(arith(ArithOp::Add, Value::Str("x".into()), Value::Int(1)), Value::Null);
    }
}
