//! # satwatch-analytics
//!
//! The post-processing pipeline (paper §3.1): data enrichment,
//! domain→service classification with the paper's Table 3 pattern
//! language, aggregated views, and typed reports for every table and
//! figure of the evaluation.
//!
//! * [`classify`] — Table 3 classifier + second-level-domain
//!   extraction (two-label TLD aware).
//! * [`agg`] — aggregation builders from monitor records to reports.
//! * [`frame`] — struct-of-arrays [`FlowFrame`] with pre-resolved
//!   enrichment columns, buildable incrementally from an eviction
//!   stream.
//! * [`engine`] — every figure as a fold over the frame, plus the
//!   fused [`report_all`] single-pass sweep.
//! * [`expr`] / [`query`] — the aggregation-pipeline DSL: JSON-parsed
//!   `match → group → project → sort → limit` pipelines compiled
//!   against the frame with small-int predicate pushdown and a
//!   deterministic parallel group-by (DESIGN.md §11).
//! * [`report`] — typed report structs with text renderers.
//! * [`topdomains`] — the top-domain rankings behind the paper's
//!   manual service-list curation.
//! * [`ascii`] — terminal CDF charts and bars for the examples/CLI.
//! * [`csv`] — plot-ready long-format CSV export, one emitter per figure.
//!
//! ```
//! use satwatch_analytics::Classifier;
//! use satwatch_traffic::Category;
//!
//! let classifier = Classifier::standard();
//! let verdict = classifier.classify("rr4---sn-4g5e6nz7.googlevideo.com");
//! assert_eq!(verdict, Some(("Youtube", Category::Video)));
//! ```

pub mod agg;
pub mod ascii;
pub mod classify;
pub mod csv;
pub mod engine;
pub mod expr;
pub mod frame;
pub mod query;
pub mod report;
pub mod topdomains;

pub use agg::{customer_days, Enrichment};
pub use classify::{second_level_domain, Classifier, ClassifyCache};
pub use engine::{report_all, PaperReports, ReportCtx};
pub use frame::{FlowFrame, FrameBuilder};
pub use query::{Pipeline, QueryStats, ResultTable};
pub use topdomains::{top_domains, TopDomains};
