//! Columnar flow analytics: the struct-of-arrays [`FlowFrame`] and
//! its incremental [`FrameBuilder`].
//!
//! The paper reduces tens of billions of flow records to a handful of
//! per-country tables; at that scale the analytics stage is bound by
//! how many times it walks the record array and how much per-flow
//! work each walk repeats. The frame fixes both at build time:
//!
//! * **One enrichment pass.** Country, beam, service, category, and
//!   local hour are resolved once per flow while the frame is built
//!   (classification memoized per interned `Domain` handle) and
//!   stored as small integers. Every downstream figure reads a byte
//!   instead of re-probing hash maps and re-matching patterns.
//! * **Struct of arrays.** Each figure touches only the columns it
//!   needs; a sweep over `bytes_up`/`bytes_down` no longer drags the
//!   whole ~250-byte `FlowRecord` (plus its `early` vector and domain
//!   `Arc`) through the cache.
//! * **Streaming ingest.** [`FrameBuilder::push`] accepts evicted
//!   records one at a time, in *any* order, and [`FrameBuilder::seal`]
//!   restores the probe's canonical record order by sorting on the
//!   same total key `Probe::finish` uses — so a run can stream flows
//!   straight from the probe's eviction sink into the frame without
//!   ever materializing `Vec<FlowRecord>`, and still produce
//!   byte-identical reports (see DESIGN.md §10).
//!
//! Row order is the byte-equivalence contract: row `i` of a frame
//! built by [`FlowFrame::from_records`] is `flows[i]`, and a sealed
//! streaming frame equals the batch frame over the same dataset.

use crate::agg::Enrichment;
use crate::classify::{Classifier, ClassifyCache};
use satwatch_monitor::{Domain, FlowRecord, L7Protocol};
use satwatch_simcore::time::SECS_PER_DAY;
use satwatch_simcore::{FxHashMap, SimTime};
use satwatch_traffic::{Category, Country};
use std::net::Ipv4Addr;
use std::sync::OnceLock;

/// Sentinel for "no country mapping" in [`FlowFrame::country`].
pub const NO_COUNTRY: u8 = u8::MAX;
/// Sentinel for "no beam mapping" in [`FlowFrame::beam`].
pub const NO_BEAM: u16 = u16::MAX;
/// Sentinel for "unclassified" in [`FlowFrame::category`].
pub const NO_CATEGORY: u8 = u8::MAX;
/// Sentinel for "unclassified" in [`FlowFrame::service`].
pub const NO_SERVICE: u16 = u16::MAX;
/// Sentinel for "no local hour" (no country) in [`FlowFrame::local_hour`].
pub const NO_HOUR: u8 = u8::MAX;

struct Metrics {
    rows: &'static satwatch_telemetry::Counter,
    build_us: &'static satwatch_telemetry::Histogram,
}

fn metrics() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        rows: satwatch_telemetry::counter("analytics_frame_rows_total"),
        build_us: satwatch_telemetry::histogram("analytics_frame_build_us"),
    })
}

/// One flow, resolved to columns. Kept only inside the builder; the
/// sort-key fields (ports, server, protocol) are dropped at seal time
/// once the canonical order is restored.
#[derive(Clone, Debug)]
struct Row {
    // canonical sort key (mirrors `monitor::flow_sort_key`)
    first: SimTime,
    client: Ipv4Addr,
    client_port: u16,
    server: Ipv4Addr,
    server_port: u16,
    ip_proto: u8,
    // measurement columns
    bytes_up: u64,
    bytes_down: u64,
    ground_rtt_avg: f64,
    ground_rtt_samples: u64,
    sat_rtt_ms: f64,
    down_bps: f64,
    dur_s: f64,
    l7: u8,
    // pre-resolved enrichment columns
    country: u8,
    local_hour: u8,
    hour_utc: u8,
    day: u32,
    beam: u16,
    service: u16,
    category: u8,
    domain: Option<Domain>,
}

/// Struct-of-arrays flow table: one `Vec` per field, all of equal
/// length, row `i` describing one flow. Enrichment (country, beam,
/// local hour) and classification (service, category) are already
/// resolved into small integers — see the module docs.
#[derive(Clone, Debug, Default)]
pub struct FlowFrame {
    /// Anonymized client address (needed by the Table 2 DNS join).
    pub client: Vec<Ipv4Addr>,
    /// Flow start time (needed by the Table 2 DNS join + day/hour).
    pub first: Vec<SimTime>,
    /// Client→server (upload) bytes.
    pub bytes_up: Vec<u64>,
    /// Server→client (download) bytes.
    pub bytes_down: Vec<u64>,
    /// Mean ground-segment RTT, ms (valid iff `ground_rtt_samples > 0`).
    pub ground_rtt_avg: Vec<f64>,
    pub ground_rtt_samples: Vec<u64>,
    /// Satellite RTT, ms; `NaN` when the flow had no TLS estimate.
    pub sat_rtt_ms: Vec<f64>,
    /// Download throughput over the data window, bit/s (paper §6.5).
    pub down_bps: Vec<f64>,
    /// Flow duration, seconds.
    pub dur_s: Vec<f64>,
    /// `L7Protocol::ALL[l7[i]]` is the DPI verdict.
    pub l7: Vec<u8>,
    /// `Country::ALL[country[i]]`, or [`NO_COUNTRY`].
    pub country: Vec<u8>,
    /// Hour of day in the customer's local time, or [`NO_HOUR`].
    pub local_hour: Vec<u8>,
    /// Hour of day, UTC.
    pub hour_utc: Vec<u8>,
    /// Day index of the flow start.
    pub day: Vec<u32>,
    /// Beam id, or [`NO_BEAM`].
    pub beam: Vec<u16>,
    /// `services[service[i]]` is the classified service, or [`NO_SERVICE`].
    pub service: Vec<u16>,
    /// `Category::ALL[category[i]]`, or [`NO_CATEGORY`].
    pub category: Vec<u8>,
    /// Interned domain handle (kept for the Table 2 DNS join).
    pub domain: Vec<Option<Domain>>,
    /// Service-index table: `service` column values index this.
    pub services: Vec<&'static str>,
}

impl FlowFrame {
    /// Build a frame from records already in the probe's canonical
    /// output order. Row `i` is `flows[i]` — the caller's iteration
    /// order is preserved exactly, which is what makes frame sweeps
    /// byte-identical to record-slice passes.
    pub fn from_records(flows: &[FlowRecord], enr: &Enrichment) -> FlowFrame {
        let mut b = FrameBuilder::new(enr.clone());
        for f in flows {
            b.push(f);
        }
        b.finish(false)
    }

    /// Number of rows (flows).
    pub fn len(&self) -> usize {
        self.first.len()
    }

    pub fn is_empty(&self) -> bool {
        self.first.is_empty()
    }

    /// The country of row `i`, if enriched.
    #[inline]
    pub fn country_at(&self, i: usize) -> Option<Country> {
        let idx = self.country[i];
        (idx != NO_COUNTRY).then(|| Country::ALL[idx as usize])
    }

    /// Total bytes (both directions) of row `i`.
    #[inline]
    pub fn flow_bytes(&self, i: usize) -> u64 {
        self.bytes_up[i] + self.bytes_down[i]
    }

    /// The beam of row `i`, if enriched.
    #[inline]
    pub fn beam_at(&self, i: usize) -> Option<u16> {
        let b = self.beam[i];
        (b != NO_BEAM).then_some(b)
    }

    /// The category of row `i`, if classified.
    #[inline]
    pub fn category_at(&self, i: usize) -> Option<Category> {
        let c = self.category[i];
        (c != NO_CATEGORY).then(|| Category::ALL[c as usize])
    }

    /// The classified service name of row `i`, if classified.
    #[inline]
    pub fn service_at(&self, i: usize) -> Option<&'static str> {
        let s = self.service[i];
        (s != NO_SERVICE).then(|| self.services[s as usize])
    }

    /// The local hour of row `i`, if the customer's country is known.
    #[inline]
    pub fn local_hour_at(&self, i: usize) -> Option<u8> {
        let h = self.local_hour[i];
        (h != NO_HOUR).then_some(h)
    }

    /// The satellite RTT of row `i` in ms, if the flow had an estimate.
    #[inline]
    pub fn sat_rtt_at(&self, i: usize) -> Option<f64> {
        let r = self.sat_rtt_ms[i];
        (!r.is_nan()).then_some(r)
    }

    /// Tile the frame `n` times: rows `0..len` repeated back to back.
    /// Used by `bench --replicate` to scale the analytics workload
    /// without changing the dataset; equals building a frame from the
    /// record slice repeated `n` times.
    pub fn replicate(&self, n: usize) -> FlowFrame {
        let mut out = self.clone();
        for _ in 1..n.max(1) {
            out.client.extend_from_slice(&self.client);
            out.first.extend_from_slice(&self.first);
            out.bytes_up.extend_from_slice(&self.bytes_up);
            out.bytes_down.extend_from_slice(&self.bytes_down);
            out.ground_rtt_avg.extend_from_slice(&self.ground_rtt_avg);
            out.ground_rtt_samples.extend_from_slice(&self.ground_rtt_samples);
            out.sat_rtt_ms.extend_from_slice(&self.sat_rtt_ms);
            out.down_bps.extend_from_slice(&self.down_bps);
            out.dur_s.extend_from_slice(&self.dur_s);
            out.l7.extend_from_slice(&self.l7);
            out.country.extend_from_slice(&self.country);
            out.local_hour.extend_from_slice(&self.local_hour);
            out.hour_utc.extend_from_slice(&self.hour_utc);
            out.day.extend_from_slice(&self.day);
            out.beam.extend_from_slice(&self.beam);
            out.service.extend_from_slice(&self.service);
            out.category.extend_from_slice(&self.category);
            out.domain.extend_from_slice(&self.domain);
        }
        out
    }

    /// Resident size of the column data, bytes (capacity-based; the
    /// `domain` column counts handles, not the shared string bytes).
    pub fn memory_bytes(&self) -> usize {
        self.client.capacity() * std::mem::size_of::<Ipv4Addr>()
            + self.first.capacity() * std::mem::size_of::<SimTime>()
            + (self.bytes_up.capacity() + self.bytes_down.capacity() + self.ground_rtt_samples.capacity()) * 8
            + (self.ground_rtt_avg.capacity() + self.sat_rtt_ms.capacity()) * 8
            + (self.down_bps.capacity() + self.dur_s.capacity()) * 8
            + self.l7.capacity()
            + self.country.capacity()
            + self.local_hour.capacity()
            + self.hour_utc.capacity()
            + self.day.capacity() * 4
            + (self.beam.capacity() + self.service.capacity()) * 2
            + self.category.capacity()
            + self.domain.capacity() * std::mem::size_of::<Option<Domain>>()
    }
}

/// Incremental frame builder: the enrichment pass. Owns the
/// enrichment maps and the Table 3 classifier, resolves every pushed
/// record to a [`Row`], and seals into a [`FlowFrame`].
pub struct FrameBuilder {
    enr: Enrichment,
    classifier: Classifier,
    cache: ClassifyCache,
    services: Vec<&'static str>,
    service_idx: FxHashMap<&'static str, u16>,
    rows: Vec<Row>,
}

impl FrameBuilder {
    /// A builder using the standard Table 3 classifier. The service
    /// table is the rule list in declaration order, so service
    /// indices are stable across builders.
    pub fn new(enr: Enrichment) -> FrameBuilder {
        let classifier = Classifier::standard();
        let services: Vec<&'static str> = classifier.rules().iter().map(|r| r.service).collect();
        let service_idx: FxHashMap<&'static str, u16> =
            services.iter().enumerate().map(|(i, s)| (*s, i as u16)).collect();
        FrameBuilder { enr, classifier, cache: ClassifyCache::default(), services, service_idx, rows: Vec::new() }
    }

    /// Resolve one record into a row. Accepts records in any order;
    /// [`FrameBuilder::seal`] restores the canonical order. The record
    /// must carry the *anonymized* client address (as records leaving
    /// the probe do) or the enrichment lookups will miss.
    pub fn push(&mut self, f: &FlowRecord) {
        let country = self.enr.country(f.client);
        let (service, category) = match &f.domain {
            Some(d) => match self.classifier.classify_cached(d, &mut self.cache) {
                Some((svc, cat)) => (self.service_idx[svc], cat.index() as u8),
                None => (NO_SERVICE, NO_CATEGORY),
            },
            None => (NO_SERVICE, NO_CATEGORY),
        };
        self.rows.push(Row {
            first: f.first,
            client: f.client,
            client_port: f.client_port,
            server: f.server,
            server_port: f.server_port,
            ip_proto: f.ip_proto,
            bytes_up: f.c2s_bytes,
            bytes_down: f.s2c_bytes,
            ground_rtt_avg: f.ground_rtt.avg_ms,
            ground_rtt_samples: f.ground_rtt.samples,
            sat_rtt_ms: f.sat_rtt_ms.unwrap_or(f64::NAN),
            down_bps: f.download_throughput_bps(),
            dur_s: f.duration_s(),
            l7: f.l7.index() as u8,
            country: country.map_or(NO_COUNTRY, |c| c.index() as u8),
            local_hour: country.map_or(NO_HOUR, |c| f.first.local_hour(c.tz_offset()) as u8),
            hour_utc: f.first.hour_of_day() as u8,
            day: (f.first.as_secs() / SECS_PER_DAY) as u32,
            beam: self.enr.beam_of.get(&f.client).copied().unwrap_or(NO_BEAM),
            service,
            category,
            domain: f.domain.clone(),
        });
    }

    /// Rows buffered so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The enrichment the builder resolves against.
    pub fn enrichment(&self) -> &Enrichment {
        &self.enr
    }

    /// Seal a stream-built frame: sort rows into the probe's canonical
    /// record order, then scatter into columns. Sorting here is what
    /// makes eviction order irrelevant — the key is the same total
    /// `(first, client, cport, server, sport, proto)` key
    /// `Probe::finish` sorts by, so any permutation of the same flow
    /// set seals into the identical frame.
    pub fn seal(self) -> FlowFrame {
        self.finish(true)
    }

    fn finish(mut self, sort: bool) -> FlowFrame {
        let _span = satwatch_telemetry::Span::over(metrics().build_us);
        if sort {
            self.rows.sort_by_key(|r| (r.first, r.client, r.client_port, r.server, r.server_port, r.ip_proto));
        }
        let n = self.rows.len();
        metrics().rows.add(n as u64);
        let mut fr = FlowFrame {
            client: Vec::with_capacity(n),
            first: Vec::with_capacity(n),
            bytes_up: Vec::with_capacity(n),
            bytes_down: Vec::with_capacity(n),
            ground_rtt_avg: Vec::with_capacity(n),
            ground_rtt_samples: Vec::with_capacity(n),
            sat_rtt_ms: Vec::with_capacity(n),
            down_bps: Vec::with_capacity(n),
            dur_s: Vec::with_capacity(n),
            l7: Vec::with_capacity(n),
            country: Vec::with_capacity(n),
            local_hour: Vec::with_capacity(n),
            hour_utc: Vec::with_capacity(n),
            day: Vec::with_capacity(n),
            beam: Vec::with_capacity(n),
            service: Vec::with_capacity(n),
            category: Vec::with_capacity(n),
            domain: Vec::with_capacity(n),
            services: self.services,
        };
        for r in self.rows {
            fr.client.push(r.client);
            fr.first.push(r.first);
            fr.bytes_up.push(r.bytes_up);
            fr.bytes_down.push(r.bytes_down);
            fr.ground_rtt_avg.push(r.ground_rtt_avg);
            fr.ground_rtt_samples.push(r.ground_rtt_samples);
            fr.sat_rtt_ms.push(r.sat_rtt_ms);
            fr.down_bps.push(r.down_bps);
            fr.dur_s.push(r.dur_s);
            fr.l7.push(r.l7);
            fr.country.push(r.country);
            fr.local_hour.push(r.local_hour);
            fr.hour_utc.push(r.hour_utc);
            fr.day.push(r.day);
            fr.beam.push(r.beam);
            fr.service.push(r.service);
            fr.category.push(r.category);
            fr.domain.push(r.domain);
        }
        fr
    }
}

/// `L7Protocol` of row value `v` (inverse of `L7Protocol::index`).
#[inline]
pub fn l7_of(v: u8) -> L7Protocol {
    L7Protocol::ALL[v as usize]
}

/// `Category` of row value `v` (inverse of `Category::index`).
#[inline]
pub fn category_of(v: u8) -> Category {
    Category::ALL[v as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use satwatch_monitor::record::RttSummary;
    use satwatch_simcore::SimDuration;

    fn flow(i: u8, hour: u32, domain: Option<&str>) -> FlowRecord {
        FlowRecord {
            client: Ipv4Addr::new(77, 0, 0, i),
            server: Ipv4Addr::new(198, 18, 0, 1),
            client_port: 50_000 + u16::from(i),
            server_port: 443,
            ip_proto: 6,
            first: SimTime::from_secs(hour as u64 * 3600 + u64::from(i)),
            last: SimTime::from_secs(hour as u64 * 3600 + u64::from(i)) + SimDuration::from_secs(10),
            c2s_packets: 5,
            c2s_bytes: 100 + u64::from(i),
            c2s_payload_bytes: 100,
            s2c_packets: 10,
            s2c_bytes: 1_000 + u64::from(i),
            s2c_payload_bytes: 1_000,
            c2s_retrans: 0,
            s2c_retrans: 0,
            early: vec![],
            syn_seen: true,
            fin_seen: true,
            rst_seen: false,
            ground_rtt: RttSummary { samples: 3, min_ms: 11.0, avg_ms: 12.0, max_ms: 14.0, std_ms: 1.0 },
            s2c_data_first: None,
            s2c_data_last: None,
            sat_rtt_ms: Some(600.0),
            l7: L7Protocol::TlsHttps,
            domain: domain.map(Into::into),
        }
    }

    fn enrichment() -> Enrichment {
        let mut e = Enrichment { days: 1, ..Default::default() };
        e.country_of.insert(Ipv4Addr::new(77, 0, 0, 1), Country::Congo);
        e.beam_of.insert(Ipv4Addr::new(77, 0, 0, 1), 3);
        e
    }

    #[test]
    fn columns_resolve_enrichment_and_classification() {
        let flows = vec![flow(1, 14, Some("video.tiktokv.com")), flow(2, 3, None)];
        let fr = FlowFrame::from_records(&flows, &enrichment());
        assert_eq!(fr.len(), 2);
        // enriched row
        assert_eq!(fr.country_at(0), Some(Country::Congo));
        assert_eq!(fr.beam[0], 3);
        assert_eq!(fr.local_hour[0], 15, "Congo is UTC+1");
        assert_eq!(fr.hour_utc[0], 14);
        assert_eq!(fr.services[fr.service[0] as usize], "Tiktok");
        assert_eq!(category_of(fr.category[0]), Category::Social);
        // unenriched, unclassified row
        assert_eq!(fr.country_at(1), None);
        assert_eq!(fr.beam[1], NO_BEAM);
        assert_eq!(fr.local_hour[1], NO_HOUR);
        assert_eq!(fr.service[1], NO_SERVICE);
        assert_eq!(fr.category[1], NO_CATEGORY);
        assert_eq!(fr.flow_bytes(0), flows[0].c2s_bytes + flows[0].s2c_bytes);
        assert_eq!(l7_of(fr.l7[0]), L7Protocol::TlsHttps);
    }

    #[test]
    fn sealed_stream_equals_batch_in_any_push_order() {
        let mut flows: Vec<FlowRecord> =
            (0..20).map(|i| flow(i % 5, u32::from(i) % 24, Some("docs.google.com"))).collect();
        flows.sort_by_key(|f| (f.first, f.client, f.client_port, f.server, f.server_port, f.ip_proto));
        let batch = FlowFrame::from_records(&flows, &enrichment());
        // push in reversed (≠ canonical) order, as an eviction stream might
        let mut b = FrameBuilder::new(enrichment());
        for f in flows.iter().rev() {
            b.push(f);
        }
        let sealed = b.seal();
        assert_eq!(sealed.len(), batch.len());
        assert_eq!(sealed.first, batch.first);
        assert_eq!(sealed.client, batch.client);
        assert_eq!(sealed.bytes_up, batch.bytes_up);
        assert_eq!(sealed.bytes_down, batch.bytes_down);
        assert_eq!(sealed.country, batch.country);
        assert_eq!(sealed.service, batch.service);
        assert_eq!(sealed.category, batch.category);
        assert_eq!(sealed.day, batch.day);
    }

    #[test]
    fn replicate_tiles_rows() {
        let flows = vec![flow(1, 10, None), flow(2, 11, None)];
        let fr = FlowFrame::from_records(&flows, &enrichment());
        let tiled = fr.replicate(3);
        assert_eq!(tiled.len(), 6);
        assert_eq!(&tiled.bytes_up[0..2], &tiled.bytes_up[2..4]);
        assert_eq!(tiled.first[4], fr.first[0]);
        assert!(tiled.memory_bytes() > fr.memory_bytes());
    }
}
