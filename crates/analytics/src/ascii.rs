//! ASCII rendering of distributions: CDF/CCDF line charts and
//! horizontal bars for terminal output. Used by the examples and the
//! CLI so a figure can actually be *looked at* without plotting
//! dependencies.

use satwatch_simcore::stats::Cdf;
use std::fmt::Write as _;

/// Render a set of CDFs as a fixed-size ASCII chart. Each series gets
/// a marker character; x is linear between `x_min` and `x_max`.
pub fn cdf_chart(series: &[(char, &Cdf)], x_min: f64, x_max: f64, width: usize, height: usize) -> String {
    assert!(x_max > x_min && width >= 10 && height >= 4);
    let mut grid = vec![vec![' '; width]; height];
    for &(marker, cdf) in series {
        for (col, x) in (0..width).map(|c| (c, x_min + (x_max - x_min) * c as f64 / (width - 1) as f64)) {
            let p = cdf.at(x);
            // row 0 is the top (p = 1)
            let row = ((1.0 - p) * (height - 1) as f64).round() as usize;
            let row = row.min(height - 1);
            grid[row][col] = marker;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = match i {
            0 => "1.0 ".to_string(),
            _ if i == height - 1 => "0.0 ".to_string(),
            _ if i == height / 2 => "0.5 ".to_string(),
            _ => "    ".to_string(),
        };
        let _ = writeln!(out, "{label}|{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "    +{}", "-".repeat(width));
    let _ = writeln!(out, "     {:<width$.3}{:>10.3}", x_min, x_max, width = width.saturating_sub(10));
    out
}

/// Render labelled horizontal bars scaled to the maximum value.
pub fn bars(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max).max(1e-12);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in rows {
        let n = ((v / max) * width as f64).round() as usize;
        let _ = writeln!(out, "{label:<label_w$} |{} {v:.1}", "#".repeat(n));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_has_expected_geometry() {
        let cdf = Cdf::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = cdf_chart(&[('*', &cdf)], 0.0, 6.0, 40, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 12, "10 rows + axis + labels");
        assert!(lines[0].starts_with("1.0 |"));
        assert!(lines[9].starts_with("0.0 |"));
        assert!(s.contains('*'));
        // monotone: first column of stars at the bottom, last near top
        let first_star_row = lines.iter().position(|l| l.contains('*')).unwrap();
        assert!(first_star_row < 3, "CDF reaches ~1 on the right side");
    }

    #[test]
    fn multiple_series_coexist() {
        let a = Cdf::from_values(&[1.0, 1.5, 2.0]);
        let b = Cdf::from_values(&[4.0, 4.5, 5.0]);
        let s = cdf_chart(&[('a', &a), ('b', &b)], 0.0, 6.0, 30, 8);
        assert!(s.contains('a') && s.contains('b'));
    }

    #[test]
    fn bars_scale_to_max() {
        let rows = vec![("Congo".to_string(), 100.0), ("Spain".to_string(), 50.0), ("empty".to_string(), 0.0)];
        let s = bars(&rows, 20);
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(count(lines[0]), 20);
        assert_eq!(count(lines[1]), 10);
        assert_eq!(count(lines[2]), 0);
    }

    #[test]
    #[should_panic]
    fn chart_rejects_degenerate_range() {
        let cdf = Cdf::from_values(&[1.0]);
        cdf_chart(&[('x', &cdf)], 5.0, 5.0, 20, 5);
    }
}
