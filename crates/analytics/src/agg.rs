//! Aggregation builders: from monitor records (+ operator enrichment)
//! to the typed reports of [`crate::report`].
//!
//! Mirrors the paper's §3.1 pipeline: enrich each record with the
//! customer's country (via the anonymized-subnet↔country map supplied
//! by the operator) and the service (via the domain classifier), then
//! build the aggregate views.
//!
//! The heavy group-bys come in two forms: the classic serial function
//! (`table1`, `fig2`, …) and a `*_par` variant taking a worker count.
//! The parallel form folds contiguous chunks of the record slice into
//! per-worker partial maps and reduces them **in chunk order**
//! ([`ordered_par_fold`]); every accumulator is either an exact
//! integer sum or an order-preserving concatenation, so any worker
//! count produces bit-identical reports. Serial is just `workers = 1`
//! of the same code path.

use crate::classify::{second_level_domain, Classifier, ClassifyCache};
use crate::report::*;
use satwatch_internet::ResolverId;
use satwatch_monitor::{DnsRecord, FlowRecord, L7Protocol};
use satwatch_simcore::stats::{BoxplotSummary, Cdf};
use satwatch_simcore::time::SECS_PER_DAY;
use satwatch_simcore::{ordered_par_fold, FxHashMap, FxHashSet};
use satwatch_traffic::{Category, Country};
use std::net::Ipv4Addr;

/// Operator-provided enrichment: anonymized customer address →
/// country / beam, plus static beam facts (paper §3.1: "mapping the
/// encrypted customer subnet to the corresponding country with the
/// support of the SatCom operator").
#[derive(Clone, Debug, Default)]
pub struct Enrichment {
    pub country_of: FxHashMap<Ipv4Addr, Country>,
    pub beam_of: FxHashMap<Ipv4Addr, u16>,
    pub beams: Vec<BeamInfo>,
    /// Number of days the capture covers.
    pub days: u64,
}

#[derive(Clone, Debug)]
pub struct BeamInfo {
    pub name: String,
    pub country: Country,
    pub peak_utilization: f64,
}

impl Enrichment {
    pub fn country(&self, client: Ipv4Addr) -> Option<Country> {
        self.country_of.get(&client).copied()
    }

    pub fn customers_in(&self, c: Country) -> usize {
        self.country_of.values().filter(|&&cc| cc == c).count()
    }
}

/// Night window in local time (paper Fig 8a: 2:00–5:00).
pub fn is_night(local_hour: u32) -> bool {
    (2..5).contains(&local_hour)
}

/// Peak window in local time (paper Fig 8a: 13:00–20:00).
pub fn is_peak(local_hour: u32) -> bool {
    (13..20).contains(&local_hour)
}

fn flow_bytes(f: &FlowRecord) -> u64 {
    f.c2s_bytes + f.s2c_bytes
}

fn local_hour_of(f: &FlowRecord, c: Country) -> u32 {
    f.first.local_hour(c.tz_offset())
}

/// Table 1: protocol volume shares.
pub fn table1(flows: &[FlowRecord]) -> Table1 {
    table1_par(flows, 1)
}

/// [`table1`] on `workers` threads; identical output at any count.
pub fn table1_par(flows: &[FlowRecord], workers: usize) -> Table1 {
    let _span = satwatch_telemetry::span("analytics_table1_us");
    let (by_proto, total) = ordered_par_fold(
        workers,
        flows,
        |chunk| {
            let mut by: FxHashMap<L7Protocol, u64> = FxHashMap::default();
            let mut total = 0u64;
            for f in chunk {
                let b = flow_bytes(f);
                *by.entry(f.l7).or_default() += b;
                total += b;
            }
            (by, total)
        },
        |(mut a, at), (b, bt)| {
            for (k, v) in b {
                *a.entry(k).or_default() += v;
            }
            (a, at + bt)
        },
    );
    let rows = L7Protocol::ALL
        .into_iter()
        .map(|p| (p, 100.0 * by_proto.get(&p).copied().unwrap_or(0) as f64 / total.max(1) as f64))
        .collect();
    Table1 { rows }
}

/// Figure 2: per-country volume & customer shares.
pub fn fig2(flows: &[FlowRecord], enr: &Enrichment) -> Fig2 {
    fig2_par(flows, enr, 1)
}

/// [`fig2`] on `workers` threads; identical output at any count.
pub fn fig2_par(flows: &[FlowRecord], enr: &Enrichment, workers: usize) -> Fig2 {
    let _span = satwatch_telemetry::span("analytics_fig2_us");
    let (vol, total) = ordered_par_fold(
        workers,
        flows,
        |chunk| {
            let mut vol: FxHashMap<Country, u64> = FxHashMap::default();
            let mut total = 0u64;
            for f in chunk {
                if let Some(c) = enr.country(f.client) {
                    let b = flow_bytes(f);
                    *vol.entry(c).or_default() += b;
                    total += b;
                }
            }
            (vol, total)
        },
        |(mut a, at), (b, bt)| {
            for (k, v) in b {
                *a.entry(k).or_default() += v;
            }
            (a, at + bt)
        },
    );
    let total_customers: usize = enr.country_of.len();
    let mut rows: Vec<(Country, f64, f64, f64)> = Country::ALL
        .into_iter()
        .map(|c| {
            let v = vol.get(&c).copied().unwrap_or(0);
            let customers = enr.customers_in(c);
            let mb_per_day =
                if customers == 0 || enr.days == 0 { 0.0 } else { v as f64 / 1e6 / customers as f64 / enr.days as f64 };
            (
                c,
                100.0 * v as f64 / total.max(1) as f64,
                100.0 * customers as f64 / total_customers.max(1) as f64,
                mb_per_day,
            )
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    Fig2 { rows }
}

/// Figure 3: protocol share per country (descending volume order).
pub fn fig3(flows: &[FlowRecord], enr: &Enrichment) -> Fig3 {
    fig3_par(flows, enr, 1)
}

/// [`fig3`] on `workers` threads; identical output at any count.
pub fn fig3_par(flows: &[FlowRecord], enr: &Enrichment, workers: usize) -> Fig3 {
    let _span = satwatch_telemetry::span("analytics_fig3_us");
    let vol = ordered_par_fold(
        workers,
        flows,
        |chunk| {
            let mut vol: FxHashMap<Country, FxHashMap<L7Protocol, u64>> = FxHashMap::default();
            for f in chunk {
                if let Some(c) = enr.country(f.client) {
                    *vol.entry(c).or_default().entry(f.l7).or_default() += flow_bytes(f);
                }
            }
            vol
        },
        |mut a, b| {
            for (c, protos) in b {
                let dst = a.entry(c).or_default();
                for (p, v) in protos {
                    *dst.entry(p).or_default() += v;
                }
            }
            a
        },
    );
    let mut rows: Vec<(Country, Vec<(L7Protocol, f64)>)> = vol
        .into_iter()
        .map(|(c, protos)| {
            let total: u64 = protos.values().sum();
            let shares = L7Protocol::ALL
                .into_iter()
                .map(|p| (p, 100.0 * protos.get(&p).copied().unwrap_or(0) as f64 / total.max(1) as f64))
                .collect();
            (c, shares)
        })
        .collect();
    rows.sort_by_key(|(c, _)| Country::ALL.iter().position(|x| x == c));
    Fig3 { rows }
}

/// Figure 4: hourly traffic profile normalised per country.
pub fn fig4(flows: &[FlowRecord], enr: &Enrichment) -> Fig4 {
    fig4_par(flows, enr, 1)
}

/// [`fig4`] on `workers` threads; identical output at any count.
/// Byte counts accumulate in `u64` (exact and associative) and only
/// become `f64` at the final normalisation, so the parallel reduce
/// cannot drift from the serial fold by rounding.
pub fn fig4_par(flows: &[FlowRecord], enr: &Enrichment, workers: usize) -> Fig4 {
    let _span = satwatch_telemetry::span("analytics_fig4_us");
    let by_hour = ordered_par_fold(
        workers,
        flows,
        |chunk| {
            let mut by: FxHashMap<Country, [u64; 24]> = FxHashMap::default();
            for f in chunk {
                if let Some(c) = enr.country(f.client) {
                    by.entry(c).or_insert([0; 24])[f.first.hour_of_day() as usize] += flow_bytes(f);
                }
            }
            by
        },
        |mut a, b| {
            for (c, hours) in b {
                let dst = a.entry(c).or_insert([0; 24]);
                for (d, h) in dst.iter_mut().zip(hours) {
                    *d += h;
                }
            }
            a
        },
    );
    let mut rows: Vec<(Country, [f64; 24])> = by_hour
        .into_iter()
        .map(|(c, bytes)| {
            let max = bytes.iter().copied().max().unwrap_or(0).max(1) as f64;
            let mut prof = [0.0; 24];
            for (p, b) in prof.iter_mut().zip(bytes) {
                *p = b as f64 / max;
            }
            (c, prof)
        })
        .collect();
    rows.sort_by_key(|(c, _)| Country::ALL.iter().position(|x| x == c));
    Fig4 { rows }
}

/// Per-customer-day rollup used by Fig 5 and Fig 7.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CustomerDay {
    pub flows: u64,
    pub down: u64,
    pub up: u64,
    pub by_category: FxHashMap<Category, u64>,
    pub services: FxHashSet<&'static str>,
}

impl CustomerDay {
    /// Merge another summary of the same (client, day) into this one.
    /// Every field is an exact sum or a set union, so merge order
    /// cannot change the result.
    pub(crate) fn absorb(&mut self, other: CustomerDay) {
        self.flows += other.flows;
        self.down += other.down;
        self.up += other.up;
        for (cat, bytes) in other.by_category {
            *self.by_category.entry(cat).or_default() += bytes;
        }
        self.services.extend(other.services);
    }
}

/// Roll flows up into per-(client, day) summaries.
pub fn customer_days(flows: &[FlowRecord], classifier: &Classifier) -> FxHashMap<(Ipv4Addr, u64), CustomerDay> {
    customer_days_par(flows, classifier, 1)
}

/// [`customer_days`] on `workers` threads; identical output at any count.
pub fn customer_days_par(
    flows: &[FlowRecord],
    classifier: &Classifier,
    workers: usize,
) -> FxHashMap<(Ipv4Addr, u64), CustomerDay> {
    let _span = satwatch_telemetry::span("analytics_customer_days_us");
    ordered_par_fold(
        workers,
        flows,
        |chunk| {
            let mut map: FxHashMap<(Ipv4Addr, u64), CustomerDay> = FxHashMap::default();
            // SNIs are interned, so the distinct-handle count is tiny;
            // memoizing per handle skips the pattern scan on repeats
            // without changing any verdict (classification is pure).
            let mut cache = ClassifyCache::default();
            for f in chunk {
                let day = f.first.as_secs() / SECS_PER_DAY;
                let e = map.entry((f.client, day)).or_default();
                e.flows += 1;
                e.down += f.s2c_bytes;
                e.up += f.c2s_bytes;
                if let Some(domain) = &f.domain {
                    if let Some((svc, cat)) = classifier.classify_cached(domain, &mut cache) {
                        *e.by_category.entry(cat).or_default() += flow_bytes(f);
                        e.services.insert(svc);
                    }
                }
            }
            map
        },
        |mut a, b| {
            for (k, cd) in b {
                match a.entry(k) {
                    std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().absorb(cd),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(cd);
                    }
                }
            }
            a
        },
    )
}

/// Threshold defining an *active* customer-day (paper §4: ≥ 250 flows).
pub const ACTIVE_FLOWS_THRESHOLD: u64 = 250;

/// Figure 5: CCDF sources of daily flows / download / upload.
/// Volumes are restricted to active customer-days, as in the paper.
pub fn fig5(days: &FxHashMap<(Ipv4Addr, u64), CustomerDay>, enr: &Enrichment) -> Fig5 {
    let mut flows_by_c: FxHashMap<Country, Vec<f64>> = FxHashMap::default();
    let mut down_by_c: FxHashMap<Country, Vec<f64>> = FxHashMap::default();
    let mut up_by_c: FxHashMap<Country, Vec<f64>> = FxHashMap::default();
    for ((client, _), cd) in days {
        let Some(c) = enr.country(*client) else { continue };
        flows_by_c.entry(c).or_default().push(cd.flows as f64);
        if cd.flows >= ACTIVE_FLOWS_THRESHOLD {
            down_by_c.entry(c).or_default().push(cd.down as f64);
            up_by_c.entry(c).or_default().push(cd.up as f64);
        }
    }
    let mut rows = Vec::new();
    for c in Country::ALL {
        if let Some(fl) = flows_by_c.get(&c) {
            rows.push((
                c,
                Cdf::from_values(fl),
                Cdf::from_values(down_by_c.get(&c).map(Vec::as_slice).unwrap_or(&[])),
                Cdf::from_values(up_by_c.get(&c).map(Vec::as_slice).unwrap_or(&[])),
            ));
        }
    }
    Fig5 { rows }
}

/// Figure 6: service popularity (% of customers per day).
pub fn fig6(
    days: &FxHashMap<(Ipv4Addr, u64), CustomerDay>,
    enr: &Enrichment,
    services: &[&'static str],
    countries: &[Country],
) -> Fig6 {
    // count customer-days on which each (service, country) was used
    let mut used: FxHashMap<(&'static str, Country), u64> = FxHashMap::default();
    for ((client, _), cd) in days {
        let Some(c) = enr.country(*client) else { continue };
        for svc in &cd.services {
            *used.entry((svc, c)).or_default() += 1;
        }
    }
    let values = services
        .iter()
        .map(|svc| {
            countries
                .iter()
                .map(|c| {
                    let denom = (enr.customers_in(*c) as u64 * enr.days.max(1)) as f64;
                    100.0 * used.get(&(*svc, *c)).copied().unwrap_or(0) as f64 / denom.max(1.0)
                })
                .collect()
        })
        .collect();
    Fig6 { services: services.to_vec(), countries: countries.to_vec(), values }
}

/// Figure 7: daily volume boxplots per (country, category), over the
/// customer-days that accessed the category.
pub fn fig7(days: &FxHashMap<(Ipv4Addr, u64), CustomerDay>, enr: &Enrichment, countries: &[Country]) -> Fig7 {
    let mut volumes: FxHashMap<(Country, Category), Vec<f64>> = FxHashMap::default();
    for ((client, _), cd) in days {
        let Some(c) = enr.country(*client) else { continue };
        for (cat, bytes) in &cd.by_category {
            volumes.entry((c, *cat)).or_default().push(*bytes as f64 / 1e6);
        }
    }
    let mut rows = Vec::new();
    for c in countries {
        for cat in Category::PAPER_SIX {
            if let Some(v) = volumes.get(&(*c, cat)) {
                if let Some(b) = BoxplotSummary::from_values(v) {
                    rows.push((*c, cat, b));
                }
            }
        }
    }
    Fig7 { rows }
}

/// Figure 8a: satellite RTT night vs peak per country.
pub fn fig8a(flows: &[FlowRecord], enr: &Enrichment, countries: &[Country]) -> Fig8a {
    let mut night: FxHashMap<Country, Vec<f64>> = FxHashMap::default();
    let mut peak: FxHashMap<Country, Vec<f64>> = FxHashMap::default();
    for f in flows {
        let (Some(c), Some(rtt)) = (enr.country(f.client), f.sat_rtt_ms) else { continue };
        let h = local_hour_of(f, c);
        if is_night(h) {
            night.entry(c).or_default().push(rtt / 1e3);
        } else if is_peak(h) {
            peak.entry(c).or_default().push(rtt / 1e3);
        }
    }
    let rows = countries
        .iter()
        .filter_map(|c| {
            let n = night.get(c)?;
            let p = peak.get(c)?;
            Some((*c, Cdf::from_values(n), Cdf::from_values(p)))
        })
        .collect();
    Fig8a { rows }
}

/// Figure 8b: per-beam median satellite RTT (peak hours) vs
/// normalised utilization.
pub fn fig8b(flows: &[FlowRecord], enr: &Enrichment) -> Fig8b {
    let mut samples: FxHashMap<u16, Vec<f64>> = FxHashMap::default();
    for f in flows {
        let (Some(c), Some(rtt), Some(&beam)) = (enr.country(f.client), f.sat_rtt_ms, enr.beam_of.get(&f.client))
        else {
            continue;
        };
        if is_peak(local_hour_of(f, c)) {
            samples.entry(beam).or_default().push(rtt / 1e3);
        }
    }
    let max_util = enr.beams.iter().map(|b| b.peak_utilization).fold(0.0f64, f64::max).max(1e-9);
    let mut rows = Vec::new();
    for (beam, mut v) in samples {
        let info = &enr.beams[beam as usize];
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        rows.push((info.name.clone(), info.country, info.peak_utilization / max_util, median, v.len()));
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    Fig8b { rows }
}

/// Figure 9: traffic-weighted ground RTT distribution per country.
pub fn fig9(flows: &[FlowRecord], enr: &Enrichment, countries: &[Country]) -> Fig9 {
    let mut samples: FxHashMap<Country, Vec<(f64, f64)>> = FxHashMap::default();
    for f in flows {
        let Some(c) = enr.country(f.client) else { continue };
        if f.ground_rtt.samples == 0 {
            continue;
        }
        samples.entry(c).or_default().push((f.ground_rtt.avg_ms, flow_bytes(f) as f64));
    }
    let rows = countries
        .iter()
        .filter_map(|c| {
            let v = samples.get(c)?;
            let cdf = Cdf::from_weighted(v);
            let med = cdf.quantile(0.5);
            Some((*c, cdf, med))
        })
        .collect();
    Fig9 { rows }
}

/// Figure 10: resolver adoption per country + median response times.
pub fn fig10(dns: &[DnsRecord], enr: &Enrichment, countries: &[Country]) -> Fig10 {
    fig10_par(dns, enr, countries, 1)
}

/// [`fig10`] on `workers` threads; identical output at any count.
/// Response-time vectors concatenate in chunk order, reproducing the
/// serial observation order before the final sort.
pub fn fig10_par(dns: &[DnsRecord], enr: &Enrichment, countries: &[Country], workers: usize) -> Fig10 {
    let _span = satwatch_telemetry::span("analytics_fig10_us");
    let resolvers: Vec<ResolverId> = vec![
        ResolverId::OperatorEu,
        ResolverId::Google,
        ResolverId::Cloudflare,
        ResolverId::Nigerian,
        ResolverId::OpenDns,
        ResolverId::Level3,
        ResolverId::Baidu,
        ResolverId::Dns114,
        ResolverId::Other,
    ];
    let rid = |addr: Ipv4Addr| ResolverId::from_address(addr).unwrap_or(ResolverId::Other);
    type Fig10Acc = (FxHashMap<(ResolverId, Country), u64>, FxHashMap<Country, u64>, FxHashMap<ResolverId, Vec<f64>>);
    let (counts, totals, times): Fig10Acc = ordered_par_fold(
        workers,
        dns,
        |chunk| {
            let mut counts: FxHashMap<(ResolverId, Country), u64> = FxHashMap::default();
            let mut totals: FxHashMap<Country, u64> = FxHashMap::default();
            let mut times: FxHashMap<ResolverId, Vec<f64>> = FxHashMap::default();
            for d in chunk {
                let Some(c) = enr.country(d.client) else { continue };
                let r = rid(d.resolver);
                // fold the resolvers we don't break out into "Other"
                let r = if resolvers.contains(&r) { r } else { ResolverId::Other };
                *counts.entry((r, c)).or_default() += 1;
                *totals.entry(c).or_default() += 1;
                if let Some(ms) = d.response_ms {
                    times.entry(r).or_default().push(ms);
                }
            }
            (counts, totals, times)
        },
        |(mut ac, mut at, mut am), (bc, bt, bm)| {
            for (k, v) in bc {
                *ac.entry(k).or_default() += v;
            }
            for (k, v) in bt {
                *at.entry(k).or_default() += v;
            }
            for (k, v) in bm {
                am.entry(k).or_default().extend(v);
            }
            (ac, at, am)
        },
    );
    let share = resolvers
        .iter()
        .map(|r| {
            countries
                .iter()
                .map(|c| {
                    100.0 * counts.get(&(*r, *c)).copied().unwrap_or(0) as f64
                        / totals.get(c).copied().unwrap_or(0).max(1) as f64
                })
                .collect()
        })
        .collect();
    let median_ms = resolvers
        .iter()
        .map(|r| {
            times
                .get(r)
                .map(|v| {
                    let mut v = v.clone();
                    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    v[v.len() / 2]
                })
                .unwrap_or(f64::NAN)
        })
        .collect();
    Fig10 { resolvers, countries: countries.to_vec(), share, median_ms }
}

/// Table 2/4/5: per (SLD, country, resolver) mean ground RTT, joining
/// each flow to the resolver that answered its domain's lookup.
pub fn table_cdn_selection(
    flows: &[FlowRecord],
    dns: &[DnsRecord],
    enr: &Enrichment,
    countries: &[Country],
    min_flows: usize,
) -> TableCdnSelection {
    // (client, fqdn) → time-sorted lookups. A flow is attributed to
    // the most recent lookup *preceding* it within a freshness window,
    // so shared CPEs whose users mix resolvers do not cross-pollute.
    let mut lookups: FxHashMap<(Ipv4Addr, &str), Vec<(satwatch_simcore::SimTime, ResolverId)>> = FxHashMap::default();
    for d in dns {
        let r = ResolverId::from_address(d.resolver).unwrap_or(ResolverId::Other);
        lookups.entry((d.client, &*d.query)).or_default().push((d.ts, r));
    }
    for v in lookups.values_mut() {
        v.sort_by_key(|(t, _)| *t);
    }
    let fresh = satwatch_simcore::SimDuration::from_secs(30);
    let mut acc: FxHashMap<(String, Country, ResolverId), (f64, usize)> = FxHashMap::default();
    for f in flows {
        let (Some(c), Some(domain)) = (enr.country(f.client), f.domain.as_deref()) else { continue };
        if !countries.contains(&c) || f.ground_rtt.samples == 0 {
            continue;
        }
        let Some(entries) = lookups.get(&(f.client, domain)) else { continue };
        let idx = entries.partition_point(|(t, _)| *t <= f.first);
        if idx == 0 {
            continue;
        }
        let (ts, r) = entries[idx - 1];
        if f.first - ts > fresh {
            continue; // stale: likely a different device's lookup
        }
        let sld = second_level_domain(domain);
        let e = acc.entry((sld, c, r)).or_insert((0.0, 0));
        e.0 += f.ground_rtt.avg_ms;
        e.1 += 1;
    }
    let mut rows: Vec<(String, Country, ResolverId, f64, usize)> = acc
        .into_iter()
        .filter(|(_, (_, n))| *n >= min_flows)
        .map(|((sld, c, r), (sum, n))| (sld, c, r, sum / n as f64, n))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    TableCdnSelection { rows }
}

/// Longitudinal view: per-day traffic volume per country (the paper is
/// "the first longitudinal study of SatCom traffic"; this is the
/// day-granularity companion of the hourly Fig 4).
pub fn daily_trend(flows: &[FlowRecord], enr: &Enrichment) -> Vec<(Country, Vec<u64>)> {
    let mut by: FxHashMap<Country, Vec<u64>> = FxHashMap::default();
    let days = enr.days.max(1) as usize;
    for f in flows {
        let Some(c) = enr.country(f.client) else { continue };
        let day = (f.first.as_secs() / SECS_PER_DAY) as usize;
        let v = by.entry(c).or_insert_with(|| vec![0; days]);
        if day < v.len() {
            v[day] += flow_bytes(f);
        }
    }
    let mut rows: Vec<(Country, Vec<u64>)> = by.into_iter().collect();
    rows.sort_by_key(|(c, _)| Country::ALL.iter().position(|x| x == c));
    rows
}

/// Minimum flow size for the throughput analysis (paper §6.5: 10 MB).
pub const THROUGHPUT_MIN_BYTES: u64 = 10_000_000;

/// Figure 11: download throughput per country over large flows.
pub fn fig11(flows: &[FlowRecord], enr: &Enrichment, countries: &[Country]) -> Fig11 {
    let mut all: FxHashMap<Country, Vec<f64>> = FxHashMap::default();
    let mut night: FxHashMap<Country, Vec<f64>> = FxHashMap::default();
    let mut peak: FxHashMap<Country, Vec<f64>> = FxHashMap::default();
    for f in flows {
        let Some(c) = enr.country(f.client) else { continue };
        if f.s2c_bytes < THROUGHPUT_MIN_BYTES {
            continue;
        }
        let mbps = f.download_throughput_bps() / 1e6;
        if mbps <= 0.0 {
            continue;
        }
        all.entry(c).or_default().push(mbps);
        let h = local_hour_of(f, c);
        if is_night(h) {
            night.entry(c).or_default().push(mbps);
        } else if is_peak(h) {
            peak.entry(c).or_default().push(mbps);
        }
    }
    let rows = countries
        .iter()
        .filter_map(|c| {
            let v = all.get(c)?;
            Some((
                *c,
                Cdf::from_values(v),
                night.get(c).and_then(|v| BoxplotSummary::from_values(v)),
                peak.get(c).and_then(|v| BoxplotSummary::from_values(v)),
            ))
        })
        .collect();
    Fig11 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satwatch_monitor::record::RttSummary;
    use satwatch_simcore::{SimDuration, SimTime};

    fn client(i: u8) -> Ipv4Addr {
        Ipv4Addr::new(77, 0, 0, i)
    }

    fn flow(c: Ipv4Addr, l7: L7Protocol, down: u64, up: u64, hour: u32, domain: Option<&str>) -> FlowRecord {
        FlowRecord {
            client: c,
            server: Ipv4Addr::new(198, 18, 0, 1),
            client_port: 50_000,
            server_port: 443,
            ip_proto: 6,
            first: SimTime::from_secs(hour as u64 * 3600),
            last: SimTime::from_secs(hour as u64 * 3600) + SimDuration::from_secs(10),
            c2s_packets: 5,
            c2s_bytes: up,
            c2s_payload_bytes: up,
            s2c_packets: 10,
            s2c_bytes: down,
            s2c_payload_bytes: down,
            c2s_retrans: 0,
            s2c_retrans: 0,
            early: vec![],
            syn_seen: true,
            fin_seen: true,
            rst_seen: false,
            ground_rtt: RttSummary { samples: 3, min_ms: 11.0, avg_ms: 12.0, max_ms: 14.0, std_ms: 1.0 },
            s2c_data_first: None,
            s2c_data_last: None,
            sat_rtt_ms: Some(600.0),
            l7,
            domain: domain.map(Into::into),
        }
    }

    fn enrichment() -> Enrichment {
        let mut e = Enrichment { days: 1, ..Default::default() };
        e.country_of.insert(client(1), Country::Congo);
        e.country_of.insert(client(2), Country::Spain);
        e.beam_of.insert(client(1), 0);
        e.beam_of.insert(client(2), 1);
        e.beams = vec![
            BeamInfo { name: "cd-0".into(), country: Country::Congo, peak_utilization: 0.9 },
            BeamInfo { name: "es-0".into(), country: Country::Spain, peak_utilization: 0.45 },
        ];
        e
    }

    #[test]
    fn table1_shares_sum_to_100() {
        let flows = vec![
            flow(client(1), L7Protocol::TlsHttps, 700, 100, 10, None),
            flow(client(1), L7Protocol::Quic, 150, 50, 10, None),
        ];
        let t = table1(&flows);
        let total: f64 = t.rows.iter().map(|(_, s)| s).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!((t.share(L7Protocol::TlsHttps) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn fig2_volume_and_customer_shares() {
        let flows = vec![
            flow(client(1), L7Protocol::TlsHttps, 900, 100, 10, None),
            flow(client(2), L7Protocol::TlsHttps, 400, 100, 10, None),
        ];
        let f = fig2(&flows, &enrichment());
        let congo = f.row(Country::Congo).unwrap();
        assert!((congo.1 - 1000.0 / 1500.0 * 100.0).abs() < 1e-9);
        assert!((congo.2 - 50.0).abs() < 1e-9);
        // sorted descending by volume
        assert_eq!(f.rows[0].0, Country::Congo);
    }

    #[test]
    fn fig5_active_threshold_applies() {
        let mut days: FxHashMap<(Ipv4Addr, u64), CustomerDay> = FxHashMap::default();
        days.insert((client(1), 0), CustomerDay { flows: 300, down: 5_000_000_000, up: 100, ..Default::default() });
        days.insert((client(2), 0), CustomerDay { flows: 100, down: 9_999_999_999, up: 10, ..Default::default() });
        let f = fig5(&days, &enrichment());
        // Spain's customer was inactive: no volume rows for Spain
        let es = f.row(Country::Spain).unwrap();
        assert_eq!(es.2.count, 0, "inactive customers excluded from volume CCDF");
        let cd = f.row(Country::Congo).unwrap();
        assert_eq!(cd.2.count, 1);
    }

    #[test]
    fn fig8a_splits_night_peak_by_local_time() {
        // Congo is UTC+1: flows at 2:00 local = 1:00 UTC... use 3:00
        // local (2:00 UTC) for night and 14:00 local (13:00 UTC) peak.
        let flows = vec![
            flow(client(1), L7Protocol::TlsHttps, 100, 10, 2, None), // 3:00 local → night
            flow(client(1), L7Protocol::TlsHttps, 100, 10, 13, None), // 14:00 local → peak
            flow(client(1), L7Protocol::TlsHttps, 100, 10, 22, None), // neither
        ];
        let f = fig8a(&flows, &enrichment(), &[Country::Congo]);
        let (_, night, peak) = f.row(Country::Congo).unwrap();
        assert_eq!(night.count, 1);
        assert_eq!(peak.count, 1);
    }

    #[test]
    fn fig8b_normalises_utilization() {
        let flows = vec![
            flow(client(1), L7Protocol::TlsHttps, 100, 10, 13, None),
            flow(client(2), L7Protocol::TlsHttps, 100, 10, 13, None),
        ];
        let f = fig8b(&flows, &enrichment());
        assert_eq!(f.rows.len(), 2);
        let cd = f.rows.iter().find(|r| r.0 == "cd-0").unwrap();
        assert!((cd.2 - 1.0).abs() < 1e-9, "max-utilization beam normalises to 1");
        let es = f.rows.iter().find(|r| r.0 == "es-0").unwrap();
        assert!((es.2 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fig10_shares_and_medians() {
        let mk = |c: Ipv4Addr, resolver: Ipv4Addr, ms: f64| DnsRecord {
            client: c,
            resolver,
            query: "x.example".into(),
            ts: SimTime::ZERO,
            response_ms: Some(ms),
            answers: vec![],
        };
        let dns = vec![
            mk(client(1), ResolverId::Google.address(), 20.0),
            mk(client(1), ResolverId::Google.address(), 24.0),
            mk(client(1), ResolverId::Dns114.address(), 110.0),
            mk(client(2), ResolverId::OperatorEu.address(), 4.0),
        ];
        let f = fig10(&dns, &enrichment(), &[Country::Congo, Country::Spain]);
        assert!((f.share_of(ResolverId::Google, Country::Congo).unwrap() - 66.6).abs() < 1.0);
        assert!((f.share_of(ResolverId::OperatorEu, Country::Spain).unwrap() - 100.0).abs() < 1e-9);
        assert!((f.median_of(ResolverId::Google).unwrap() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn cdn_table_joins_flows_to_resolvers() {
        // lookup 2 s before the flow starts (flows at hour 10 start at
        // 36 000 s)
        let dns = vec![DnsRecord {
            client: client(1),
            resolver: ResolverId::Dns114.address(),
            query: "v5.tiktokcdn.com".into(),
            ts: SimTime::from_secs(10 * 3600 - 2),
            response_ms: Some(100.0),
            answers: vec![],
        }];
        let flows = vec![flow(client(1), L7Protocol::TlsHttps, 100, 10, 10, Some("v5.tiktokcdn.com"))];
        let t = table_cdn_selection(&flows, &dns, &enrichment(), Country::ALL.as_ref(), 1);
        assert_eq!(t.rows.len(), 1);
        let (sld, c, r, rtt, n) = &t.rows[0];
        assert_eq!(sld, "tiktokcdn.com");
        assert_eq!(*c, Country::Congo);
        assert_eq!(*r, ResolverId::Dns114);
        assert!((rtt - 12.0).abs() < 1e-9);
        assert_eq!(*n, 1);
        // flows without a matching lookup are skipped
        let t2 = table_cdn_selection(
            &[flow(client(2), L7Protocol::TlsHttps, 1, 1, 1, Some("unseen.example"))],
            &dns,
            &enrichment(),
            Country::ALL.as_ref(),
            1,
        );
        assert!(t2.rows.is_empty());
        // stale lookups (older than the freshness window) are skipped
        let t3 = table_cdn_selection(
            &[flow(client(1), L7Protocol::TlsHttps, 100, 10, 12, Some("v5.tiktokcdn.com"))],
            &dns,
            &enrichment(),
            Country::ALL.as_ref(),
            1,
        );
        assert!(t3.rows.is_empty(), "2-hour-old lookup must not attribute");
    }

    #[test]
    fn fig11_filters_small_flows() {
        let mut big = flow(client(1), L7Protocol::TlsHttps, 20_000_000, 100, 13, None);
        big.last = big.first + SimDuration::from_secs(16); // 10 Mb/s
        let small = flow(client(1), L7Protocol::TlsHttps, 1_000_000, 100, 13, None);
        let f = fig11(&[big, small], &enrichment(), &[Country::Congo]);
        let (_, cdf, night, peak) = f.row(Country::Congo).unwrap();
        assert_eq!(cdf.count, 1, "small flow excluded");
        assert!((cdf.quantile(0.5) - 10.0).abs() < 0.1);
        assert!(night.is_none());
        assert!(peak.is_some());
    }

    #[test]
    fn night_peak_windows() {
        assert!(is_night(2) && is_night(4) && !is_night(5) && !is_night(1));
        assert!(is_peak(13) && is_peak(19) && !is_peak(20) && !is_peak(12));
    }

    #[test]
    fn parallel_aggregations_match_serial() {
        let mut flows = Vec::new();
        for i in 0..211u32 {
            let c = client(1 + (i % 2) as u8);
            let l7 = if i % 3 == 0 { L7Protocol::Quic } else { L7Protocol::TlsHttps };
            let domain = if i % 4 == 0 { Some("video.tiktokv.com") } else { None };
            flows.push(flow(c, l7, 1_000 + u64::from(i) * 7, 100 + u64::from(i), i % 24, domain));
        }
        let enr = enrichment();
        let classifier = Classifier::standard();
        let dns: Vec<DnsRecord> = (0..50)
            .map(|i| DnsRecord {
                client: client(1 + (i % 2) as u8),
                resolver: if i % 2 == 0 { ResolverId::Google.address() } else { ResolverId::OperatorEu.address() },
                query: "x.example".into(),
                ts: SimTime::from_secs(i),
                response_ms: Some(20.0 + i as f64),
                answers: vec![],
            })
            .collect();
        let days_serial = customer_days(&flows, &classifier);
        for workers in [2, 3, 8] {
            assert_eq!(format!("{:?}", table1(&flows)), format!("{:?}", table1_par(&flows, workers)));
            assert_eq!(format!("{:?}", fig2(&flows, &enr)), format!("{:?}", fig2_par(&flows, &enr, workers)));
            assert_eq!(format!("{:?}", fig3(&flows, &enr)), format!("{:?}", fig3_par(&flows, &enr, workers)));
            assert_eq!(format!("{:?}", fig4(&flows, &enr)), format!("{:?}", fig4_par(&flows, &enr, workers)));
            assert_eq!(days_serial, customer_days_par(&flows, &classifier, workers));
            assert_eq!(
                format!("{:?}", fig10(&dns, &enr, &[Country::Congo, Country::Spain])),
                format!("{:?}", fig10_par(&dns, &enr, &[Country::Congo, Country::Spain], workers)),
            );
        }
    }
}
