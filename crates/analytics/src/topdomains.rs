//! Top-domain rankings — the tooling behind the paper's methodology
//! of "manually inspecting the list of most popular domains by volume
//! and popularity" (§3.1) when curating the Table 3 service lists.

use crate::classify::{second_level_domain, Classifier};
use satwatch_monitor::FlowRecord;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// One ranked domain.
#[derive(Clone, Debug, PartialEq)]
pub struct DomainRank {
    pub sld: String,
    pub bytes: u64,
    /// Distinct (anonymized) customers that contacted it.
    pub customers: usize,
    pub flows: usize,
    /// Classifier verdict, if any rule matches.
    pub service: Option<&'static str>,
}

/// Rankings by volume and by popularity (distinct customers).
#[derive(Clone, Debug)]
pub struct TopDomains {
    pub by_volume: Vec<DomainRank>,
    pub by_popularity: Vec<DomainRank>,
}

/// Compute top-`n` second-level domains over the flow log.
pub fn top_domains(flows: &[FlowRecord], classifier: &Classifier, n: usize) -> TopDomains {
    struct Acc {
        bytes: u64,
        customers: HashSet<Ipv4Addr>,
        flows: usize,
    }
    let mut acc: HashMap<String, Acc> = HashMap::new();
    for f in flows {
        let Some(domain) = f.domain.as_deref() else { continue };
        let sld = second_level_domain(domain);
        let e = acc.entry(sld).or_insert(Acc { bytes: 0, customers: HashSet::new(), flows: 0 });
        e.bytes += f.c2s_bytes + f.s2c_bytes;
        e.customers.insert(f.client);
        e.flows += 1;
    }
    let mut ranks: Vec<DomainRank> = acc
        .into_iter()
        .map(|(sld, a)| {
            let service = classifier.classify(&sld).map(|(s, _)| s).or_else(|| {
                // some SLDs only match with a subdomain prefix; retry
                // with a representative host
                classifier.classify(&format!("www.{sld}")).map(|(s, _)| s)
            });
            DomainRank { sld, bytes: a.bytes, customers: a.customers.len(), flows: a.flows, service }
        })
        .collect();
    let mut by_volume = ranks.clone();
    by_volume.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.sld.cmp(&b.sld)));
    by_volume.truncate(n);
    ranks.sort_by(|a, b| b.customers.cmp(&a.customers).then(a.sld.cmp(&b.sld)));
    ranks.truncate(n);
    TopDomains { by_volume, by_popularity: ranks }
}

/// Render both rankings as aligned text.
pub fn render(top: &TopDomains) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Top domains by volume:");
    let _ = writeln!(s, "{:<26} {:>10} {:>10} {:>8}  service", "SLD", "MB", "customers", "flows");
    for r in &top.by_volume {
        let _ = writeln!(
            s,
            "{:<26} {:>10.1} {:>10} {:>8}  {}",
            r.sld,
            r.bytes as f64 / 1e6,
            r.customers,
            r.flows,
            r.service.unwrap_or("-")
        );
    }
    let _ = writeln!(s, "\nTop domains by popularity:");
    let _ = writeln!(s, "{:<26} {:>10} {:>10} {:>8}  service", "SLD", "MB", "customers", "flows");
    for r in &top.by_popularity {
        let _ = writeln!(
            s,
            "{:<26} {:>10.1} {:>10} {:>8}  {}",
            r.sld,
            r.bytes as f64 / 1e6,
            r.customers,
            r.flows,
            r.service.unwrap_or("-")
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use satwatch_monitor::record::RttSummary;
    use satwatch_monitor::L7Protocol;
    use satwatch_simcore::SimTime;

    fn flow(client_last: u8, domain: &str, bytes: u64) -> FlowRecord {
        FlowRecord {
            client: Ipv4Addr::new(77, 0, 0, client_last),
            server: Ipv4Addr::new(198, 18, 0, 1),
            client_port: 1,
            server_port: 443,
            ip_proto: 6,
            first: SimTime::ZERO,
            last: SimTime::from_secs(1),
            c2s_packets: 1,
            c2s_bytes: 100,
            c2s_payload_bytes: 100,
            s2c_packets: 1,
            s2c_bytes: bytes,
            s2c_payload_bytes: bytes,
            c2s_retrans: 0,
            s2c_retrans: 0,
            early: vec![],
            syn_seen: true,
            fin_seen: true,
            rst_seen: false,
            ground_rtt: RttSummary::default(),
            s2c_data_first: None,
            s2c_data_last: None,
            sat_rtt_ms: None,
            l7: L7Protocol::TlsHttps,
            domain: Some(domain.into()),
        }
    }

    #[test]
    fn rankings_differ_by_metric() {
        let flows = vec![
            // one whale customer pulls a lot from netflix
            flow(1, "ipv4-c1.oca.nflxvideo.net", 10_000_000),
            // three customers touch whatsapp lightly
            flow(1, "media-1.cdn.whatsapp.net", 1_000),
            flow(2, "media-2.cdn.whatsapp.net", 1_000),
            flow(3, "static.whatsapp.net", 1_000),
        ];
        let top = top_domains(&flows, &Classifier::standard(), 5);
        assert_eq!(top.by_volume[0].sld, "nflxvideo.net");
        assert_eq!(top.by_volume[0].service, Some("Netflix"));
        assert_eq!(top.by_popularity[0].sld, "whatsapp.net");
        assert_eq!(top.by_popularity[0].customers, 3);
        assert_eq!(top.by_popularity[0].service, Some("Whatsapp"));
        let text = render(&top);
        assert!(text.contains("nflxvideo.net"));
        assert!(text.contains("Whatsapp"));
    }

    #[test]
    fn flows_without_domains_ignored() {
        let mut f = flow(1, "x", 10);
        f.domain = None;
        let top = top_domains(&[f], &Classifier::standard(), 5);
        assert!(top.by_volume.is_empty());
    }

    #[test]
    fn truncates_to_n() {
        let flows: Vec<FlowRecord> = (0..20).map(|i| flow(1, &format!("www.site-{i}.test"), 100)).collect();
        let top = top_domains(&flows, &Classifier::standard(), 3);
        assert_eq!(top.by_volume.len(), 3);
        assert_eq!(top.by_popularity.len(), 3);
    }
}
