//! Plot-ready CSV export for every figure.
//!
//! The text renderers in [`crate::report`] are for terminals; these
//! emitters produce the long-format CSV a plotting script (gnuplot,
//! matplotlib, vega) consumes to redraw the paper's figures. One file
//! per figure, stable column order, RFC-4180-style quoting where
//! needed.

use crate::report::*;
use satwatch_monitor::L7Protocol;
use std::fmt::Write as _;

fn esc(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Table 1 → `protocol,share_pct`.
pub fn table1_csv(t: &Table1) -> String {
    let mut s = String::from("protocol,share_pct\n");
    for (p, share) in &t.rows {
        let _ = writeln!(s, "{},{share:.4}", esc(p.label()));
    }
    s
}

/// Figure 2 → `country,volume_pct,customers_pct,mb_per_customer_day`.
pub fn fig2_csv(f: &Fig2) -> String {
    let mut s = String::from("country,volume_pct,customers_pct,mb_per_customer_day\n");
    for (c, vol, cust, mb) in &f.rows {
        let _ = writeln!(s, "{},{vol:.4},{cust:.4},{mb:.2}", esc(c.name()));
    }
    s
}

/// Figure 3 → `country,protocol,share_pct` (long format).
pub fn fig3_csv(f: &Fig3) -> String {
    let mut s = String::from("country,protocol,share_pct\n");
    for (c, shares) in &f.rows {
        for p in L7Protocol::ALL {
            let v = shares.iter().find(|(q, _)| *q == p).map_or(0.0, |(_, x)| *x);
            let _ = writeln!(s, "{},{},{v:.4}", esc(c.name()), esc(p.label()));
        }
    }
    s
}

/// Figure 4 → `country,utc_hour,fraction_of_peak`.
pub fn fig4_csv(f: &Fig4) -> String {
    let mut s = String::from("country,utc_hour,fraction_of_peak\n");
    for (c, prof) in &f.rows {
        for (h, v) in prof.iter().enumerate() {
            let _ = writeln!(s, "{},{h},{v:.4}", esc(c.name()));
        }
    }
    s
}

/// Figure 5 → `country,metric,x,ccdf` with the three CCDFs resampled
/// to `points` probability steps.
pub fn fig5_csv(f: &Fig5, points: usize) -> String {
    let mut s = String::from("country,metric,x,ccdf\n");
    for (c, flows, down, up) in &f.rows {
        for (name, cdf) in [("flows", flows), ("down_bytes", down), ("up_bytes", up)] {
            if cdf.count == 0 {
                continue;
            }
            for (x, p) in cdf.resample(points) {
                let _ = writeln!(s, "{},{name},{x:.1},{:.6}", esc(c.name()), 1.0 - p);
            }
        }
    }
    s
}

/// Figure 6 → `service,country,customers_pct`.
pub fn fig6_csv(f: &Fig6) -> String {
    let mut s = String::from("service,country,customers_pct\n");
    for (si, svc) in f.services.iter().enumerate() {
        for (ci, c) in f.countries.iter().enumerate() {
            let _ = writeln!(s, "{},{},{:.4}", esc(svc), esc(c.name()), f.values[si][ci]);
        }
    }
    s
}

/// Figure 7 → `country,category,p5,q1,median,q3,p95,count` (MB).
pub fn fig7_csv(f: &Fig7) -> String {
    let mut s = String::from("country,category,p5_mb,q1_mb,median_mb,q3_mb,p95_mb,count\n");
    for (c, cat, b) in &f.rows {
        let _ = writeln!(
            s,
            "{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{}",
            esc(c.name()),
            esc(cat.label()),
            b.p5,
            b.q1,
            b.median,
            b.q3,
            b.p95,
            b.count
        );
    }
    s
}

/// Figure 8a → `country,period,rtt_s,cdf` resampled.
pub fn fig8a_csv(f: &Fig8a, points: usize) -> String {
    let mut s = String::from("country,period,rtt_s,cdf\n");
    for (c, night, peak) in &f.rows {
        for (period, cdf) in [("night", night), ("peak", peak)] {
            if cdf.count == 0 {
                continue;
            }
            for (x, p) in cdf.resample(points) {
                let _ = writeln!(s, "{},{period},{x:.4},{p:.6}", esc(c.name()));
            }
        }
    }
    s
}

/// Figure 8b → `beam,country,utilization_norm,median_rtt_s,samples`.
pub fn fig8b_csv(f: &Fig8b) -> String {
    let mut s = String::from("beam,country,utilization_norm,median_rtt_s,samples\n");
    for (b, c, u, rtt, n) in &f.rows {
        let _ = writeln!(s, "{},{},{u:.4},{rtt:.4},{n}", esc(b), esc(c.name()));
    }
    s
}

/// Figure 9 → `country,ground_rtt_ms,cdf` resampled (traffic-weighted).
pub fn fig9_csv(f: &Fig9, points: usize) -> String {
    let mut s = String::from("country,ground_rtt_ms,cdf\n");
    for (c, cdf, _) in &f.rows {
        for (x, p) in cdf.resample(points) {
            let _ = writeln!(s, "{},{x:.3},{p:.6}", esc(c.name()));
        }
    }
    s
}

/// Figure 10 → `resolver,country,share_pct,median_ms` (median repeated
/// per row for convenience).
pub fn fig10_csv(f: &Fig10) -> String {
    let mut s = String::from("resolver,country,share_pct,median_ms\n");
    for (ri, r) in f.resolvers.iter().enumerate() {
        for (ci, c) in f.countries.iter().enumerate() {
            let _ = writeln!(s, "{},{},{:.4},{:.3}", esc(r.name()), esc(c.name()), f.share[ri][ci], f.median_ms[ri]);
        }
    }
    s
}

/// Table 2/4/5 → `sld,country,resolver,mean_ground_rtt_ms,flows`.
pub fn table_cdn_csv(t: &TableCdnSelection) -> String {
    let mut s = String::from("sld,country,resolver,mean_ground_rtt_ms,flows\n");
    for (d, c, r, rtt, n) in &t.rows {
        let _ = writeln!(s, "{},{},{},{rtt:.3},{n}", esc(d), esc(c.name()), esc(r.name()));
    }
    s
}

/// Figure 11 → `country,mbps,ccdf` resampled over ≥10 MB flows.
pub fn fig11_csv(f: &Fig11, points: usize) -> String {
    let mut s = String::from("country,mbps,ccdf\n");
    for (c, cdf, _, _) in &f.rows {
        for (x, p) in cdf.resample(points) {
            let _ = writeln!(s, "{},{x:.3},{:.6}", esc(c.name()), 1.0 - p);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use satwatch_simcore::stats::Cdf;
    use satwatch_traffic::Country;

    #[test]
    fn table1_shape() {
        let t = Table1 { rows: vec![(L7Protocol::TlsHttps, 56.0), (L7Protocol::Quic, 19.6)] };
        let csv = table1_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "protocol,share_pct");
        assert_eq!(lines[1], "TCP/HTTPS,56.0000");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn fig8a_resamples_both_periods() {
        let cdf = Cdf::from_values(&[0.6, 0.7, 0.9, 2.1]);
        let f = Fig8a { rows: vec![(Country::Congo, cdf.clone(), cdf)] };
        let csv = fig8a_csv(&f, 5);
        assert!(csv.contains("Congo,night,"));
        assert!(csv.contains("Congo,peak,"));
        // header + 2 periods × 5 points
        assert_eq!(csv.lines().count(), 1 + 10);
    }

    #[test]
    fn escaping_quotes_and_commas() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a,b"), "\"a,b\"");
        assert_eq!(esc("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn empty_reports_yield_header_only() {
        assert_eq!(fig2_csv(&Fig2 { rows: vec![] }).lines().count(), 1);
        assert_eq!(fig8b_csv(&Fig8b { rows: vec![] }).lines().count(), 1);
        assert_eq!(table_cdn_csv(&TableCdnSelection { rows: vec![] }).lines().count(), 1);
    }
}
