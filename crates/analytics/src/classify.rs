//! Domain → service classification (paper §3.1 / Appendix A, Table 3).
//!
//! The paper manually curates regular expressions mapping popular
//! server names to services and categories. We implement the same
//! pattern language with three primitives — anchored suffix
//! (`spotify.com$`), anchored prefix (`^www.google`), and substring
//! (`netflix`) — and transcribe Table 3, extended with entries for the
//! supplementary services our catalog generates (updates, VPN,
//! Chinese and African local services), mirroring how the authors
//! "enumerate top and local players by manually inspecting the list
//! of most popular domains".

use satwatch_monitor::Domain;
use satwatch_simcore::FxHashMap;
use satwatch_traffic::Category;
use std::sync::Arc;

/// A memoized classification verdict: the service name and category,
/// or `None` for an unclassified domain.
pub type ServiceVerdict = Option<(&'static str, Category)>;

/// Pointer-keyed memo for [`Classifier::classify_cached`]: one entry
/// per distinct interned `Domain` handle. The stored `Domain` clone
/// keeps the allocation alive for the cache's lifetime, making the
/// pointer key stable.
#[derive(Debug, Default)]
pub struct ClassifyCache {
    by_ptr: FxHashMap<usize, (Domain, ServiceVerdict)>,
}

impl ClassifyCache {
    /// Number of distinct domain handles memoized.
    pub fn len(&self) -> usize {
        self.by_ptr.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_ptr.is_empty()
    }
}

/// One matching primitive of the Table 3 pattern language.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// `foo.com$`: the domain is `foo.com` or ends with `.foo.com`
    /// (label-boundary-safe suffix).
    Suffix(&'static str),
    /// `.foo.com$`: a strict subdomain of `foo.com`.
    SubdomainSuffix(&'static str),
    /// `^www.google`: anchored prefix.
    Prefix(&'static str),
    /// bare substring, e.g. `netflix`.
    Contains(&'static str),
}

impl Pattern {
    pub fn matches(&self, domain: &str) -> bool {
        match *self {
            Pattern::Suffix(s) => {
                domain == s || (domain.ends_with(s) && domain.as_bytes()[domain.len() - s.len() - 1] == b'.')
            }
            Pattern::SubdomainSuffix(s) => {
                domain.len() > s.len() + 1
                    && domain.ends_with(s)
                    && domain.as_bytes()[domain.len() - s.len() - 1] == b'.'
            }
            Pattern::Prefix(p) => domain.starts_with(p),
            Pattern::Contains(c) => domain.contains(c),
        }
    }
}

/// A classification rule: first rule whose any-pattern matches wins.
#[derive(Clone, Debug)]
pub struct Rule {
    pub service: &'static str,
    pub category: Category,
    pub patterns: &'static [Pattern],
}

/// The classifier.
#[derive(Clone, Debug)]
pub struct Classifier {
    rules: Vec<Rule>,
}

use Pattern::{Contains, Prefix, SubdomainSuffix, Suffix};

macro_rules! rule {
    ($svc:expr, $cat:expr, [$($p:expr),* $(,)?]) => {
        Rule { service: $svc, category: $cat, patterns: &[$($p),*] }
    };
}

impl Classifier {
    /// The Table 3 rule set (+ catalog-coverage extensions).
    pub fn standard() -> Classifier {
        use Category::*;
        let rules = vec![
            // ---- Table 3, transcribed ----
            rule!(
                "Spotify",
                Audio,
                [
                    Suffix("spotify.com"),
                    SubdomainSuffix("scdn.com"),
                    SubdomainSuffix("scdn.co"),
                    Suffix("pscdn.spotify.com"),
                    Suffix("scdn.co")
                ]
            ),
            rule!(
                "Youtube",
                Video,
                [
                    Suffix("googlevideo.com"),
                    SubdomainSuffix("ytimg.com"),
                    SubdomainSuffix("youtube.com"),
                    SubdomainSuffix("gvt1.com"),
                    SubdomainSuffix("gvt2.com"),
                    SubdomainSuffix("youtube-nocookie.com"),
                    Suffix("youtube.com")
                ]
            ),
            rule!(
                "Netflix",
                Video,
                [
                    Contains("netflix"),
                    Contains("nflxext."),
                    Contains("nflximg"),
                    Contains("nflxvideo"),
                    Contains("nflxso.")
                ]
            ),
            rule!("Sky", Video, [SubdomainSuffix("sky.com"), Suffix("sky.com")]),
            rule!(
                "Primevideo",
                Video,
                [
                    Suffix("amazonvideo.com"),
                    Suffix("primevideo.com"),
                    Suffix("pv-cdn.net"),
                    Suffix("atv-ps.amazon.com"),
                    Suffix("atv-ext.amazon.com"),
                    Suffix("atv-ext-eu.amazon.com"),
                    Suffix("atv-ext-fe.amazon.com"),
                    Prefix("atv-ps-eu.amazon"),
                    Prefix("atv-ps-fe.amazon")
                ]
            ),
            rule!(
                "Facebook",
                Social,
                [
                    Suffix("facebook.com"),
                    Suffix("fbcdn.net"),
                    Suffix("facebook.net"),
                    Prefix("fbcdn"),
                    Prefix("fbstatic"),
                    Prefix("fbexternal"),
                    Suffix("fbsbx.com"),
                    Suffix("fb.com")
                ]
            ),
            rule!(
                "Twitter",
                Social,
                [
                    SubdomainSuffix("twitter.com"),
                    SubdomainSuffix("twimg.com"),
                    Suffix("twitter.com"),
                    Suffix("twitter.com.edgesuite.net"),
                    Suffix("twitter-any.s3.amazonaws.com"),
                    Suffix("twitter-blog.s3.amazonaws.com")
                ]
            ),
            rule!("Linkedin", Social, [Suffix("linkedin.com"), Suffix("licdn.com"), Suffix("lnkd.in")]),
            rule!(
                "Instagram",
                Social,
                [
                    SubdomainSuffix("instagram.com"),
                    Suffix("instagram.com"),
                    Contains("cdninstagram.com"),
                    Prefix("igcdn")
                ]
            ),
            rule!(
                "Tiktok",
                Social,
                [
                    Suffix("tiktok.com"),
                    Contains("tiktokcdn"),
                    Suffix("tiktokv.com"),
                    Contains("tiktokv.com"),
                    Contains("tiktok")
                ]
            ),
            rule!("Google", Search, [Prefix("www.google"), Prefix("google.")]),
            rule!("Bing", Search, [Contains("bing.com")]),
            rule!(
                "Yahoo",
                Search,
                [
                    SubdomainSuffix("yahoo.com"),
                    Suffix("yahoo.com"),
                    SubdomainSuffix("yahoo.net"),
                    SubdomainSuffix("yimg.com")
                ]
            ),
            rule!("Duckduckgo", Search, [Contains("duckduckgo.")]),
            rule!(
                "Whatsapp",
                Chat,
                [
                    SubdomainSuffix("whatsapp.com"),
                    SubdomainSuffix("whatsapp.net"),
                    Suffix("whatsapp.com"),
                    Suffix("whatsapp.net")
                ]
            ),
            rule!("Telegram", Chat, [SubdomainSuffix("telegram.org"), Prefix("telegram.org"), Suffix("telegram.org")]),
            rule!(
                "Snapchat",
                Chat,
                [
                    SubdomainSuffix("snapchat.com"),
                    Suffix("snapchat.com"),
                    Suffix("feelinsonice.appspot.com"),
                    Suffix("feelinsonice-hrd.appspot.com"),
                    Suffix("feelinsonice.l.google.com"),
                    Suffix("sc-cdn.net")
                ]
            ),
            rule!(
                "Skype",
                Chat,
                [
                    Suffix("skypeassets.com"),
                    SubdomainSuffix("skype.com"),
                    SubdomainSuffix("skype.net"),
                    Suffix("skype.com")
                ]
            ),
            rule!("Wechat", Chat, [Suffix("wechat.com"), Suffix("weixin.qq.com"), Suffix("wxs.qq.com")]),
            rule!(
                "Office365",
                Work,
                [
                    Suffix("sharepoint.com"),
                    Suffix("office.net"),
                    Suffix("onenote.com"),
                    Suffix("office365.com"),
                    Suffix("office.com"),
                    Prefix("teams.microsoft"),
                    Prefix("teams.office"),
                    Contains("lync"),
                    Suffix("live.com")
                ]
            ),
            rule!(
                "Gsuite",
                Work,
                [
                    Suffix("googledrive.com"),
                    SubdomainSuffix("drive.google.com"),
                    Suffix("drive.google.com"),
                    Suffix("docs.google.com"),
                    Suffix("mail.google.com"),
                    Suffix("sheets.google.com"),
                    Suffix("slides.google.com"),
                    Suffix("takeout.google.com")
                ]
            ),
            rule!("Dropbox", Work, [Contains("dropbox"), Contains("db.tt")]),
            // ---- extensions for catalog coverage (same methodology) ----
            rule!(
                "MicrosoftUpdate",
                Update,
                [
                    Contains("windowsupdate.com"),
                    Contains("delivery.mp.microsoft.com"),
                    Suffix("download.microsoft.com")
                ]
            ),
            rule!("BusinessVpn", Vpn, [Contains("vpn.corp-gw")]),
            rule!("VoipCall", Call, [Prefix("sip.voice-provider")]),
            rule!(
                "AppleInfra",
                Background,
                [Suffix("captive.apple.com"), SubdomainSuffix("ls.apple.com"), Suffix("configuration.apple.com")]
            ),
            rule!(
                "GoogleInfra",
                Background,
                [Suffix("play.googleapis.com"), Suffix("gstatic.com"), Prefix("clients"), Suffix("mtalk.google.com")]
            ),
            rule!("CpeTelemetry", Background, [Contains("satcom-operator.example.net")]),
            rule!("Netease", Web, [Contains("netease.com"), Suffix("163.com")]),
            rule!("QQ", Web, [Suffix("qq.com")]),
            rule!("Umeng", Web, [Contains("umeng.com")]),
            rule!("Kuaishou", Social, [Contains("yximgs.com")]),
            rule!("ScooperNews", Web, [Contains("scooper.news")]),
            rule!("Shalltry", Web, [Contains("shalltry.com")]),
            rule!("CongoLocal", Web, [Suffix("actualite.cd"), Suffix("radiookapi.net"), Suffix("portail-kinshasa.cd")]),
            rule!("NigeriaLocal", Web, [Suffix("punchng.com.ng"), Suffix("gtbank.com.ng"), Suffix("legit.ng")]),
            rule!("SouthAfricaLocal", Web, [Suffix("news24.co.za"), Suffix("fnb.co.za"), Suffix("gov.za")]),
            rule!("GenericWeb", Web, [Contains("example.com"), Contains("example.net"), Contains("example.org")]),
        ];
        Classifier { rules }
    }

    /// Classify a domain. First matching rule wins (rules are ordered
    /// most-specific first, as in the paper's manual curation).
    pub fn classify(&self, domain: &str) -> Option<(&'static str, Category)> {
        let d = domain.to_ascii_lowercase();
        self.rules.iter().find(|r| r.patterns.iter().any(|p| p.matches(&d))).map(|r| (r.service, r.category))
    }

    /// [`Classifier::classify`] memoized per interned domain handle.
    ///
    /// Flow records intern their SNI (`Domain = Arc<str>`), so the
    /// same backing allocation recurs for every flow to a given name;
    /// keying the memo on the `Arc` pointer skips both the lowercasing
    /// and the pattern scan on every repeat. The cache pins a clone of
    /// each `Domain` it has seen so the allocation (and therefore the
    /// pointer key) cannot be freed and reused for a different name
    /// while the cache lives. Classification is a pure function of the
    /// name, so memoization cannot change any result.
    pub fn classify_cached(&self, domain: &Domain, cache: &mut ClassifyCache) -> Option<(&'static str, Category)> {
        let key = Arc::as_ptr(domain) as *const u8 as usize;
        if let Some((_pin, verdict)) = cache.by_ptr.get(&key) {
            return *verdict;
        }
        let verdict = self.classify(domain);
        cache.by_ptr.insert(key, (domain.clone(), verdict));
        verdict
    }

    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Render the rule set as the paper's Table 3: service, category,
    /// and the pattern list in the paper's notation (`^` prefix,
    /// trailing `$` suffix, leading `.` strict subdomain).
    pub fn render_rules(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from(
            "Table 3: regular expressions used to identify services and categories
",
        );
        let _ = writeln!(s, "{:<16} {:<16} patterns", "Service", "Category");
        for r in &self.rules {
            let pats: Vec<String> = r
                .patterns
                .iter()
                .map(|p| match p {
                    Pattern::Suffix(x) => format!("{x}$"),
                    Pattern::SubdomainSuffix(x) => format!(".{x}$"),
                    Pattern::Prefix(x) => format!("^{x}"),
                    Pattern::Contains(x) => (*x).to_string(),
                })
                .collect();
            let _ = writeln!(s, "{:<16} {:<16} [{}]", r.service, r.category.label(), pats.join(", "));
        }
        s
    }
}

/// Two-label public suffixes the second-level-domain extractor knows
/// (paper footnote 6: "we handle the case of two-label top level
/// domains — e.g. co.uk").
const TWO_LABEL_TLDS: &[&str] = &[
    "co.uk",
    "org.uk",
    "ac.uk",
    "gov.uk",
    "co.za",
    "org.za",
    "gov.za",
    "com.ng",
    "org.ng",
    "gov.ng",
    "com.cd",
    "co.ke",
    "or.ke",
    "com.gh",
    "edu.gh",
    "com.cn",
    "org.cn",
    "appspot.com",
    "amazonaws.com",
];

/// Extract the second-level domain: `scontent-1.xx.fbcdn.net` →
/// `fbcdn.net`; `news.bbc.co.uk` → `bbc.co.uk`.
pub fn second_level_domain(domain: &str) -> String {
    let d = domain.trim_end_matches('.').to_ascii_lowercase();
    let labels: Vec<&str> = d.split('.').collect();
    if labels.len() <= 2 {
        return d;
    }
    let last2 = labels[labels.len() - 2..].join(".");
    if TWO_LABEL_TLDS.contains(&last2.as_str()) && labels.len() >= 3 {
        labels[labels.len() - 3..].join(".")
    } else {
        last2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_primitives() {
        assert!(Suffix("spotify.com").matches("api.spotify.com"));
        assert!(Suffix("spotify.com").matches("spotify.com"));
        assert!(!Suffix("spotify.com").matches("notspotify.com"));
        assert!(SubdomainSuffix("sky.com").matches("cdn.sky.com"));
        assert!(!SubdomainSuffix("sky.com").matches("sky.com"));
        assert!(!SubdomainSuffix("sky.com").matches("whisky.com"));
        assert!(Prefix("www.google").matches("www.google.co.uk"));
        assert!(!Prefix("www.google").matches("maps.google.com"));
        assert!(Contains("netflix").matches("api-global.netflix.com"));
    }

    #[test]
    fn table3_spot_checks() {
        let c = Classifier::standard();
        let cases = [
            ("audio-sp-7.pscdn.spotify.com", "Spotify", Category::Audio),
            ("rr4---sn-4g5e6nz7.googlevideo.com", "Youtube", Category::Video),
            ("ipv4-c012-lagg0.1.oca.nflxvideo.net", "Netflix", Category::Video),
            ("cdn-3.skycdp.sky.com", "Sky", Category::Video),
            ("atv-ext-eu.amazon.com", "Primevideo", Category::Video),
            ("scontent-9.xx.fbcdn.net", "Facebook", Category::Social),
            ("pbs.twimg.com", "Twitter", Category::Social),
            ("media.licdn.com", "Linkedin", Category::Social),
            ("scontent-7.cdninstagram.com", "Instagram", Category::Social),
            ("v5.tiktokcdn.com", "Tiktok", Category::Social),
            ("www.google.com", "Google", Category::Search),
            ("google.es", "Google", Category::Search),
            ("www.bing.com", "Bing", Category::Search),
            ("media-3.cdn.whatsapp.net", "Whatsapp", Category::Chat),
            ("web.telegram.org", "Telegram", Category::Chat),
            ("app.snapchat.com", "Snapchat", Category::Chat),
            ("short.weixin.qq.com", "Wechat", Category::Chat),
            ("companyname.sharepoint.com", "Office365", Category::Work),
            ("docs.google.com", "Gsuite", Category::Work),
            ("content.dropboxapi.com", "Dropbox", Category::Work),
        ];
        for (domain, svc, cat) in cases {
            let got = c.classify(domain);
            assert_eq!(got, Some((svc, cat)), "{domain}");
        }
    }

    #[test]
    fn unknown_domains_unclassified() {
        let c = Classifier::standard();
        assert_eq!(c.classify("random.website.xyz"), None);
        assert_eq!(c.classify(""), None);
    }

    #[test]
    fn classification_case_insensitive() {
        let c = Classifier::standard();
        assert_eq!(c.classify("WWW.GOOGLE.COM").map(|x| x.0), Some("Google"));
    }

    #[test]
    fn wechat_wins_over_qq() {
        // weixin.qq.com must classify as Wechat (Chat), not QQ (Web):
        // rule order encodes specificity.
        let c = Classifier::standard();
        assert_eq!(c.classify("short.weixin.qq.com").map(|x| x.0), Some("Wechat"));
        assert_eq!(c.classify("btrace.qq.com").map(|x| x.0), Some("QQ"));
    }

    #[test]
    fn catalog_round_trip() {
        // Every domain the generator can emit classifies back to the
        // generating service (or at least its category).
        let c = Classifier::standard();
        let catalog = satwatch_traffic::catalog::standard_catalog();
        let mut rng = satwatch_simcore::Rng::new(9);
        for svc in &catalog {
            for _ in 0..20 {
                let d = svc.sample_domain(&mut rng);
                let got = c.classify(&d);
                assert!(got.is_some(), "{} generated unclassifiable {d}", svc.name);
                let (name, cat) = got.unwrap();
                assert_eq!(cat, svc.category, "{d} → {name} ({cat:?}), want {}", svc.name);
            }
        }
    }

    #[test]
    fn table3_renders_every_rule() {
        let c = Classifier::standard();
        let text = c.render_rules();
        assert!(text.contains("Table 3"));
        for r in c.rules() {
            assert!(text.contains(r.service), "{} missing", r.service);
        }
        // the paper's notation survives
        assert!(text.contains("^www.google"));
        assert!(text.contains("spotify.com$"));
        assert!(text.contains(".sky.com$"));
    }

    #[test]
    fn cached_classification_matches_uncached() {
        let c = Classifier::standard();
        let mut cache = ClassifyCache::default();
        let domains: Vec<Domain> =
            ["video.tiktokv.com", "docs.google.com", "random.website.xyz"].iter().map(|d| Domain::from(*d)).collect();
        for d in &domains {
            assert_eq!(c.classify_cached(d, &mut cache), c.classify(d));
            // hit path returns the same verdict
            assert_eq!(c.classify_cached(d, &mut cache), c.classify(d));
        }
        assert_eq!(cache.len(), 3, "one entry per distinct handle");
        // a distinct handle with equal content gets its own entry but
        // the same verdict
        let dup = Domain::from("video.tiktokv.com");
        assert_eq!(c.classify_cached(&dup, &mut cache), c.classify("video.tiktokv.com"));
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn sld_extraction() {
        assert_eq!(second_level_domain("scontent-1.xx.fbcdn.net"), "fbcdn.net");
        assert_eq!(second_level_domain("news.bbc.co.uk"), "bbc.co.uk");
        assert_eq!(second_level_domain("www.gtbank.com.ng"), "gtbank.com.ng");
        assert_eq!(second_level_domain("www.fnb.co.za"), "fnb.co.za");
        assert_eq!(second_level_domain("example.com"), "example.com");
        assert_eq!(second_level_domain("localhost"), "localhost");
        assert_eq!(second_level_domain("feelinsonice.appspot.com"), "feelinsonice.appspot.com");
    }
}
