//! Typed report structures for every table and figure in the paper's
//! evaluation, with plain-text renderers that print the same rows /
//! series the paper reports.

use satwatch_monitor::L7Protocol;
use satwatch_simcore::stats::{BoxplotSummary, Cdf};
use satwatch_traffic::{Category, Country};
use std::fmt::Write as _;

/// Table 1: TCP/UDP traffic breakdown by protocol.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// (protocol, % of total volume)
    pub rows: Vec<(L7Protocol, f64)>,
}

impl Table1 {
    pub fn share(&self, p: L7Protocol) -> f64 {
        self.rows.iter().find(|(q, _)| *q == p).map_or(0.0, |(_, s)| *s)
    }

    pub fn render(&self) -> String {
        let mut s = String::from("Table 1: TCP/UDP traffic breakdown by protocol\n");
        let _ = writeln!(s, "{:<12} {:>12}", "Protocol", "Volume share");
        for (p, share) in &self.rows {
            let _ = writeln!(s, "{:<12} {:>11.1}%", p.label(), share);
        }
        s
    }
}

/// Figure 2: per-country traffic volume and customer share.
#[derive(Clone, Debug)]
pub struct Fig2 {
    /// Sorted by decreasing volume: (country, % volume, % customers,
    /// mean MB per customer per day).
    pub rows: Vec<(Country, f64, f64, f64)>,
}

impl Fig2 {
    pub fn row(&self, c: Country) -> Option<&(Country, f64, f64, f64)> {
        self.rows.iter().find(|(cc, ..)| *cc == c)
    }

    pub fn render(&self) -> String {
        let mut s = String::from("Figure 2: per-country traffic volume and customer share\n");
        let _ = writeln!(s, "{:<14} {:>9} {:>11} {:>14}", "Country", "Volume%", "Customers%", "MB/cust/day");
        for (c, vol, cust, mb) in &self.rows {
            let _ = writeln!(s, "{:<14} {:>8.1}% {:>10.1}% {:>14.0}", c.name(), vol, cust, mb);
        }
        s
    }
}

/// Figure 3: protocol share per country (top countries by volume).
#[derive(Clone, Debug)]
pub struct Fig3 {
    /// (country, [(protocol, % of that country's volume)])
    pub rows: Vec<(Country, Vec<(L7Protocol, f64)>)>,
}

impl Fig3 {
    pub fn share(&self, c: Country, p: L7Protocol) -> f64 {
        self.rows
            .iter()
            .find(|(cc, _)| *cc == c)
            .and_then(|(_, v)| v.iter().find(|(q, _)| *q == p))
            .map_or(0.0, |(_, s)| *s)
    }

    pub fn render(&self) -> String {
        let mut s = String::from("Figure 3: protocol share per country\n");
        let _ = write!(s, "{:<14}", "Country");
        for p in L7Protocol::ALL {
            let _ = write!(s, " {:>10}", p.label());
        }
        s.push('\n');
        for (c, shares) in &self.rows {
            let _ = write!(s, "{:<14}", c.name());
            for p in L7Protocol::ALL {
                let v = shares.iter().find(|(q, _)| *q == p).map_or(0.0, |(_, x)| *x);
                let _ = write!(s, " {:>9.1}%", v);
            }
            s.push('\n');
        }
        s
    }
}

/// Figure 4: hourly traffic profile per country, normalised to the
/// country's own peak hour (UTC hours).
#[derive(Clone, Debug)]
pub struct Fig4 {
    pub rows: Vec<(Country, [f64; 24])>,
}

impl Fig4 {
    pub fn profile(&self, c: Country) -> Option<&[f64; 24]> {
        self.rows.iter().find(|(cc, _)| *cc == c).map(|(_, p)| p)
    }

    pub fn peak_hour_utc(&self, c: Country) -> Option<u32> {
        self.profile(c)
            .map(|p| p.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).map(|(h, _)| h as u32).unwrap())
    }

    pub fn render(&self) -> String {
        let mut s = String::from("Figure 4: daily traffic profile per country (fraction of peak, UTC hour)\n");
        let _ = write!(s, "{:<14}", "Country");
        for h in 0..24 {
            let _ = write!(s, " {h:>4}");
        }
        s.push('\n');
        for (c, prof) in &self.rows {
            let _ = write!(s, "{:<14}", c.name());
            for v in prof {
                let _ = write!(s, " {v:>4.2}");
            }
            s.push('\n');
        }
        s
    }
}

/// Figure 5: CCDFs of per-customer daily flows / download / upload.
#[derive(Clone, Debug)]
pub struct Fig5 {
    /// (country, flows-per-day CCDF source, down bytes, up bytes)
    pub rows: Vec<(Country, Cdf, Cdf, Cdf)>,
}

impl Fig5 {
    pub fn row(&self, c: Country) -> Option<&(Country, Cdf, Cdf, Cdf)> {
        self.rows.iter().find(|(cc, ..)| *cc == c)
    }

    /// Fraction of customer-days with more than `x` for one of the
    /// three metrics (0 = flows, 1 = down, 2 = up).
    pub fn ccdf(&self, c: Country, metric: usize, x: f64) -> f64 {
        self.row(c).map_or(0.0, |(_, f, d, u)| match metric {
            0 => f.ccdf_at(x),
            1 => d.ccdf_at(x),
            _ => u.ccdf_at(x),
        })
    }

    pub fn render(&self) -> String {
        let mut s = String::from("Figure 5: per-customer daily activity CCDF probes\n");
        let _ = writeln!(
            s,
            "{:<14} {:>12} {:>12} {:>14} {:>14} {:>12}",
            "Country", "P[fl>250]", "P[fl>2500]", "P[down>1GB]", "P[down>10GB]", "P[up>1GB]"
        );
        for (c, flows, down, up) in &self.rows {
            let _ = writeln!(
                s,
                "{:<14} {:>11.1}% {:>11.1}% {:>13.1}% {:>13.1}% {:>11.1}%",
                c.name(),
                flows.ccdf_at(250.0) * 100.0,
                flows.ccdf_at(2500.0) * 100.0,
                down.ccdf_at(1e9) * 100.0,
                down.ccdf_at(1e10) * 100.0,
                up.ccdf_at(1e9) * 100.0,
            );
        }
        s
    }
}

/// Figure 6: service popularity heatmap (% of customers per day).
#[derive(Clone, Debug)]
pub struct Fig6 {
    pub services: Vec<&'static str>,
    pub countries: Vec<Country>,
    /// `values[s][c]` = % of country `c`'s customers using service `s`.
    pub values: Vec<Vec<f64>>,
}

impl Fig6 {
    pub fn value(&self, service: &str, country: Country) -> Option<f64> {
        let si = self.services.iter().position(|s| *s == service)?;
        let ci = self.countries.iter().position(|c| *c == country)?;
        Some(self.values[si][ci])
    }

    pub fn render(&self) -> String {
        let mut s = String::from("Figure 6: service popularity (% of customers per day)\n");
        let _ = write!(s, "{:<12}", "Service");
        for c in &self.countries {
            let _ = write!(s, " {:>12}", c.name());
        }
        s.push('\n');
        for (si, svc) in self.services.iter().enumerate() {
            let _ = write!(s, "{svc:<12}");
            for v in &self.values[si] {
                let _ = write!(s, " {v:>12.2}");
            }
            s.push('\n');
        }
        s
    }
}

/// Figure 7: daily volume per customer per service category.
#[derive(Clone, Debug)]
pub struct Fig7 {
    /// (country, category, boxplot of MB/day over customer-days)
    pub rows: Vec<(Country, Category, BoxplotSummary)>,
}

impl Fig7 {
    pub fn summary(&self, c: Country, cat: Category) -> Option<&BoxplotSummary> {
        self.rows.iter().find(|(cc, k, _)| *cc == c && *k == cat).map(|(_, _, b)| b)
    }

    pub fn render(&self) -> String {
        let mut s = String::from("Figure 7: daily volume per customer per category (MB)\n");
        let _ = writeln!(
            s,
            "{:<14} {:<16} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "Country", "Category", "p5", "q1", "median", "q3", "p95"
        );
        for (c, cat, b) in &self.rows {
            let _ = writeln!(
                s,
                "{:<14} {:<16} {:>8.2} {:>8.2} {:>8.1} {:>8.1} {:>8.0}",
                c.name(),
                cat.label(),
                b.p5,
                b.q1,
                b.median,
                b.q3,
                b.p95
            );
        }
        s
    }
}

/// Figure 8a: satellite RTT distribution per country, night vs peak.
#[derive(Clone, Debug)]
pub struct Fig8a {
    /// (country, night CDF, peak CDF) of satellite RTT in seconds.
    pub rows: Vec<(Country, Cdf, Cdf)>,
}

impl Fig8a {
    pub fn row(&self, c: Country) -> Option<&(Country, Cdf, Cdf)> {
        self.rows.iter().find(|(cc, ..)| *cc == c)
    }

    pub fn render(&self) -> String {
        let mut s = String::from("Figure 8a: satellite RTT per country (seconds)\n");
        let _ = writeln!(
            s,
            "{:<14} {:>10} {:>10} {:>10} {:>12} {:>10} {:>10} {:>10} {:>12}",
            "Country",
            "night p25",
            "night med",
            "night p75",
            "night P[>2s]",
            "peak p25",
            "peak med",
            "peak p75",
            "peak P[>2s]"
        );
        for (c, night, peak) in &self.rows {
            let _ = writeln!(
                s,
                "{:<14} {:>10.2} {:>10.2} {:>10.2} {:>11.1}% {:>10.2} {:>10.2} {:>10.2} {:>11.1}%",
                c.name(),
                night.quantile(0.25),
                night.quantile(0.5),
                night.quantile(0.75),
                night.ccdf_at(2.0) * 100.0,
                peak.quantile(0.25),
                peak.quantile(0.5),
                peak.quantile(0.75),
                peak.ccdf_at(2.0) * 100.0,
            );
        }
        s
    }
}

/// Figure 8b: per-beam median satellite RTT vs normalised utilization.
#[derive(Clone, Debug)]
pub struct Fig8b {
    /// (beam name, country, normalised peak utilization, median RTT s, samples)
    pub rows: Vec<(String, Country, f64, f64, usize)>,
}

impl Fig8b {
    pub fn render(&self) -> String {
        let mut s = String::from("Figure 8b: median satellite RTT per beam vs normalised utilization (peak time)\n");
        let _ = writeln!(
            s,
            "{:<10} {:<14} {:>12} {:>12} {:>9}",
            "Beam", "Country", "Util (norm)", "Median RTT s", "Samples"
        );
        for (b, c, u, rtt, n) in &self.rows {
            let _ = writeln!(s, "{:<10} {:<14} {:>12.2} {:>12.2} {:>9}", b, c.name(), u, rtt, n);
        }
        s
    }
}

/// Figure 9: ground-segment RTT distribution per country.
#[derive(Clone, Debug)]
pub struct Fig9 {
    /// (country, CDF of per-flow average ground RTT in ms, median ms)
    pub rows: Vec<(Country, Cdf, f64)>,
}

impl Fig9 {
    pub fn row(&self, c: Country) -> Option<&(Country, Cdf, f64)> {
        self.rows.iter().find(|(cc, ..)| *cc == c)
    }

    pub fn render(&self) -> String {
        let mut s = String::from("Figure 9: ground RTT per country (ms)\n");
        let _ = writeln!(
            s,
            "{:<14} {:>8} {:>10} {:>10} {:>10} {:>12} {:>12}",
            "Country", "median", "P[<=20ms]", "P[<=40ms]", "P[<=120ms]", "P[>200ms]", "P[>300ms]"
        );
        for (c, cdf, med) in &self.rows {
            let _ = writeln!(
                s,
                "{:<14} {:>8.1} {:>9.1}% {:>9.1}% {:>9.1}% {:>11.1}% {:>11.1}%",
                c.name(),
                med,
                cdf.at(20.0) * 100.0,
                cdf.at(40.0) * 100.0,
                cdf.at(120.0) * 100.0,
                cdf.ccdf_at(200.0) * 100.0,
                cdf.ccdf_at(300.0) * 100.0,
            );
        }
        s
    }
}

/// Figure 10: DNS resolver adoption and response time.
#[derive(Clone, Debug)]
pub struct Fig10 {
    pub resolvers: Vec<satwatch_internet::ResolverId>,
    pub countries: Vec<Country>,
    /// `share[r][c]` = % of country c's DNS transactions via resolver r.
    pub share: Vec<Vec<f64>>,
    /// median response time per resolver, ms.
    pub median_ms: Vec<f64>,
}

impl Fig10 {
    pub fn share_of(&self, r: satwatch_internet::ResolverId, c: Country) -> Option<f64> {
        let ri = self.resolvers.iter().position(|x| *x == r)?;
        let ci = self.countries.iter().position(|x| *x == c)?;
        Some(self.share[ri][ci])
    }

    pub fn median_of(&self, r: satwatch_internet::ResolverId) -> Option<f64> {
        let ri = self.resolvers.iter().position(|x| *x == r)?;
        Some(self.median_ms[ri])
    }

    pub fn render(&self) -> String {
        let mut s = String::from("Figure 10: DNS resolver adoption (% of transactions) and median response time\n");
        let _ = write!(s, "{:<12}", "Resolver");
        for c in &self.countries {
            let _ = write!(s, " {:>12}", c.name());
        }
        let _ = writeln!(s, " {:>10}", "Median ms");
        for (ri, r) in self.resolvers.iter().enumerate() {
            let _ = write!(s, "{:<12}", r.name());
            for v in &self.share[ri] {
                let _ = write!(s, " {v:>12.2}");
            }
            let _ = writeln!(s, " {:>10.2}", self.median_ms[ri]);
        }
        s
    }
}

/// Table 2 / Tables 4-5: average ground RTT per (domain, resolver,
/// country).
#[derive(Clone, Debug)]
pub struct TableCdnSelection {
    /// (second-level domain, country, resolver, mean ground RTT ms, flows)
    pub rows: Vec<(String, Country, satwatch_internet::ResolverId, f64, usize)>,
}

impl TableCdnSelection {
    pub fn mean_rtt(&self, domain: &str, c: Country, r: satwatch_internet::ResolverId) -> Option<f64> {
        self.rows.iter().find(|(d, cc, rr, _, _)| d == domain && *cc == c && *rr == r).map(|(_, _, _, m, _)| *m)
    }

    pub fn render(&self) -> String {
        let mut s = String::from("Table 2/4/5: ground RTT per domain and DNS resolver (mean ms; '-' = unseen)\n");
        let _ = writeln!(s, "{:<22} {:<14} {:<12} {:>9} {:>7}", "Domain", "Country", "Resolver", "RTT ms", "Flows");
        for (d, c, r, rtt, n) in &self.rows {
            let _ = writeln!(s, "{:<22} {:<14} {:<12} {:>9.1} {:>7}", d, c.name(), r.name(), rtt, n);
        }
        s
    }
}

/// Figure 11: download throughput per country.
#[derive(Clone, Debug)]
pub struct Fig11 {
    /// (country, CCDF source of Mb/s over ≥10 MB flows,
    /// night boxplot, peak boxplot)
    pub rows: Vec<(Country, Cdf, Option<BoxplotSummary>, Option<BoxplotSummary>)>,
}

impl Fig11 {
    pub fn row(&self, c: Country) -> Option<&(Country, Cdf, Option<BoxplotSummary>, Option<BoxplotSummary>)> {
        self.rows.iter().find(|(cc, ..)| *cc == c)
    }

    pub fn render(&self) -> String {
        let mut s = String::from("Figure 11: download throughput (Mb/s, flows ≥ 10 MB)\n");
        let _ = writeln!(
            s,
            "{:<14} {:>8} {:>10} {:>10} {:>10} {:>11} {:>10}",
            "Country", "median", "P[>9Mb/s]", "P[>25Mb/s]", "P[>45Mb/s]", "night med", "peak med"
        );
        for (c, cdf, night, peak) in &self.rows {
            let _ = writeln!(
                s,
                "{:<14} {:>8.1} {:>9.1}% {:>9.1}% {:>9.1}% {:>11.1} {:>10.1}",
                c.name(),
                cdf.quantile(0.5),
                cdf.ccdf_at(9.0) * 100.0,
                cdf.ccdf_at(25.0) * 100.0,
                cdf.ccdf_at(45.0) * 100.0,
                night.map_or(f64::NAN, |b| b.median),
                peak.map_or(f64::NAN, |b| b.median),
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_render_and_lookup() {
        let t = Table1 { rows: vec![(L7Protocol::TlsHttps, 56.0), (L7Protocol::Quic, 19.6)] };
        assert_eq!(t.share(L7Protocol::TlsHttps), 56.0);
        assert_eq!(t.share(L7Protocol::Dns), 0.0);
        let r = t.render();
        assert!(r.contains("TCP/HTTPS"));
        assert!(r.contains("56.0%"));
    }

    #[test]
    fn fig6_lookup() {
        let f = Fig6 {
            services: vec!["Whatsapp"],
            countries: vec![Country::Congo, Country::Spain],
            values: vec![vec![61.2, 63.8]],
        };
        assert_eq!(f.value("Whatsapp", Country::Spain), Some(63.8));
        assert_eq!(f.value("Nope", Country::Spain), None);
        assert!(f.render().contains("Whatsapp"));
    }

    #[test]
    fn fig4_peak_hour() {
        let mut prof = [0.5f64; 24];
        prof[19] = 1.0;
        let f = Fig4 { rows: vec![(Country::Spain, prof)] };
        assert_eq!(f.peak_hour_utc(Country::Spain), Some(19));
        assert!(f.render().contains("Spain"));
    }

    #[test]
    fn renders_do_not_panic_on_empty() {
        assert!(Fig2 { rows: vec![] }.render().contains("Figure 2"));
        assert!(Fig5 { rows: vec![] }.render().contains("Figure 5"));
        assert!(TableCdnSelection { rows: vec![] }.render().contains("Table 2"));
    }
}
